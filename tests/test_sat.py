"""Tests for the CDCL SAT solver and the ordering-constraint encoder."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.cnf import CNF
from repro.sat.solver import SatSolver
from repro.synthesis.ordering import OrderingConstraints


def brute_force(num_vars, clauses, assumptions=()):
    """Reference SAT decision by enumeration."""
    fixed = {abs(lit): lit > 0 for lit in assumptions}
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v + 1: bits[v] for v in range(num_vars)}
        if any(assignment[v] != val for v, val in fixed.items()):
            continue
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause) for clause in clauses
        ):
            return True
    return False


class TestSolverBasics:
    def test_empty_formula_sat(self):
        assert SatSolver().solve()

    def test_unit_clauses(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-2])
        assert solver.solve()
        assert solver.value(1) is True
        assert solver.value(2) is False

    def test_contradiction(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert not solver.add_clause([-1])
        assert not solver.solve()

    def test_simple_implication_chain(self):
        solver = SatSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([1])
        assert solver.solve()
        assert solver.value(3) is True

    def test_pigeonhole_2_in_1_unsat(self):
        # two pigeons, one hole
        solver = SatSolver()
        solver.add_clause([1])   # pigeon1 in hole1
        solver.add_clause([2])   # pigeon2 in hole1
        solver.add_clause([-1, -2])
        assert not solver.solve()

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        assert solver.add_clause([1, -1])
        assert solver.solve()

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            SatSolver().add_clause([0])

    def test_model_satisfies_formula(self):
        clauses = [[1, 2, -3], [-1, 3], [2, 3], [-2, -3, 1]]
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve()
        model = solver.model()
        for clause in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in clause)


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1])
        assert solver.value(2) is True

    def test_unsat_under_assumptions_recovers(self):
        solver = SatSolver()
        solver.add_clause([-1, 2])
        assert not solver.solve(assumptions=[1, -2])
        assert solver.last_core  # some core reported
        # still satisfiable without assumptions
        assert solver.solve()

    def test_incremental_clause_addition(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve()
        solver.add_clause([-1])
        assert solver.solve()
        assert solver.value(2) is True
        solver.add_clause([-2])
        assert not solver.solve()


# property-based cross-check against brute force ------------------------
clauses_st = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=12,
)


@given(clauses=clauses_st)
@settings(max_examples=300, deadline=None)
def test_solver_matches_brute_force(clauses):
    solver = SatSolver()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    result = solver.solve() if ok else False
    assert result == brute_force(5, clauses)


@given(clauses=clauses_st, assumption_bits=st.lists(st.booleans(), min_size=2, max_size=2))
@settings(max_examples=200, deadline=None)
def test_solver_with_assumptions_matches_brute_force(clauses, assumption_bits):
    assumptions = [(1 if assumption_bits[0] else -1), (2 if assumption_bits[1] else -2)]
    solver = SatSolver()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    result = solver.solve(assumptions) if ok else False
    assert result == brute_force(5, clauses, assumptions)


@given(clauses=clauses_st, seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=100, deadline=None)
def test_incremental_equals_from_scratch(clauses, seed):
    """Adding clauses one by one gives the same verdicts as fresh solvers."""
    rng = random.Random(seed)
    incremental = SatSolver()
    added = []
    for clause in clauses:
        ok = incremental.add_clause(clause)
        added.append(clause)
        if rng.random() < 0.5:
            expected = brute_force(5, added)
            got = incremental.solve() if ok else False
            assert got == expected


class TestCNF:
    def test_var_interning(self):
        cnf = CNF()
        assert cnf.var("a") == cnf.var("a")
        assert cnf.var("a") != cnf.var("b")
        assert cnf.name_of(cnf.var("a")) == "a"

    def test_named_clause(self):
        cnf = CNF()
        clause = cnf.add_named_clause(("a", True), ("b", False))
        assert clause == (cnf.var("a"), -cnf.var("b"))
        assert len(cnf) == 1

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            CNF().add_clause([])


class TestOrderingConstraints:
    def test_single_constraint_feasible(self):
        oc = OrderingConstraints()
        oc.add_counterexample(["A"], ["C"])
        assert oc.feasible()

    def test_cycle_infeasible(self):
        oc = OrderingConstraints()
        oc.add_counterexample(["A"], ["B"])  # B before A
        oc.add_counterexample(["B"], ["A"])  # A before B
        assert not oc.feasible()

    def test_three_cycle_infeasible(self):
        oc = OrderingConstraints()
        oc.add_counterexample(["A"], ["B"])
        oc.add_counterexample(["B"], ["C"])
        oc.add_counterexample(["C"], ["A"])
        assert not oc.feasible()

    def test_disjunction_keeps_feasibility(self):
        oc = OrderingConstraints()
        oc.add_counterexample(["A", "B"], ["C"])  # C<A or C<B
        oc.add_counterexample(["C"], ["A"])       # A<C
        # C<B remains possible
        assert oc.feasible()

    def test_empty_updated_side_infeasible(self):
        oc = OrderingConstraints()
        oc.add_counterexample([], ["A"])
        assert not oc.feasible()

    def test_empty_not_updated_side_infeasible(self):
        oc = OrderingConstraints()
        oc.add_counterexample(["A"], [])
        assert not oc.feasible()
