"""Tests for the ORDERUPDATE synthesis algorithm and its optimizations."""

import pytest

from repro.errors import SynthesisTimeout, UpdateInfeasibleError
from repro.kripke.structure import KripkeStructure
from repro.ltl import specs
from repro.mc import make_checker
from repro.net.commands import is_careful
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.synthesis import SearchShard, order_update
from repro.synthesis.pruning import WrongConfigs, make_formula
from repro.topo import double_diamond, mini_datacenter, ring_diamond

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
BLUE = ["H1", "T1", "A2", "C1", "A4", "T3", "H3"]


def fig1(final_path=GREEN):
    topo = mini_datacenter()
    init = Configuration.from_paths(topo, {TC: RED})
    final = Configuration.from_paths(topo, {TC: final_path})
    return topo, init, final


def plan_order(plan):
    return [c.switch for c in plan.updates()]


def assert_plan_valid(topo, init, final, ingresses, spec, plan):
    """Every prefix configuration of the plan satisfies the spec."""
    assert is_careful(plan.commands) or plan.num_waits() < plan.num_updates() - 1
    config = init
    for command in plan.updates():
        config = config.with_table(command.switch, command.table)
        ks = KripkeStructure(topo, config, ingresses)
        assert make_checker("incremental", ks, spec).full_check().ok
    assert config == final


class TestFig1Scenarios:
    def test_red_to_green_order(self):
        topo, init, final = fig1()
        spec = specs.reachability(TC, "H3")
        plan = order_update(topo, init, final, {TC: ["H1"]}, spec)
        order = plan_order(plan)
        # the one hard constraint: C2 must come before A1
        assert order.index("C2") < order.index("A1")
        assert_plan_valid(topo, init, final, {TC: ["H1"]}, spec, plan)

    def test_red_to_blue_with_waypoint_choice(self):
        topo, init, final = fig1(BLUE)
        spec = specs.waypoint_choice(TC, ["A2", "A3"], "H3")
        plan = order_update(topo, init, final, {TC: ["H1"]}, spec)
        order = plan_order(plan)
        # A2 and C1's flip constraints: T1 must flip after A2 is ready
        assert order.index("A2") < order.index("T1")
        assert_plan_valid(topo, init, final, {TC: ["H1"]}, spec, plan)

    def test_careful_plan_shape(self):
        topo, init, final = fig1()
        plan = order_update(topo, init, final, {TC: ["H1"]}, specs.reachability(TC, "H3"))
        assert is_careful(plan.commands)
        assert plan.num_waits() == plan.num_updates() - 1

    def test_trivial_spec_allows_any_order(self):
        from repro.ltl.syntax import TRUE

        topo, init, final = fig1()
        plan = order_update(topo, init, final, {TC: ["H1"]}, TRUE)
        assert set(plan_order(plan)) == {"A1", "C1", "C2"}

    def test_noop_update(self):
        topo, init, _ = fig1()
        plan = order_update(topo, init, init, {TC: ["H1"]}, specs.reachability(TC, "H3"))
        assert plan.num_updates() == 0

    def test_infeasible_final_config(self):
        topo, init, _final = fig1()
        empty = Configuration.empty()
        with pytest.raises(UpdateInfeasibleError):
            order_update(topo, init, empty, {TC: ["H1"]}, specs.reachability(TC, "H3"))

    def test_infeasible_initial_config(self):
        topo, _init, final = fig1()
        empty = Configuration.empty()
        with pytest.raises(UpdateInfeasibleError):
            order_update(topo, empty, final, {TC: ["H1"]}, specs.reachability(TC, "H3"))


class TestOptimizations:
    def test_counterexample_pruning_reduces_checks(self):
        sc = ring_diamond(20, seed=2)
        with_cex = order_update(
            sc.topology, sc.init, sc.final, sc.ingresses, sc.spec,
            use_counterexamples=True, use_reachability_heuristic=False,
        )
        without_cex = order_update(
            sc.topology, sc.init, sc.final, sc.ingresses, sc.spec,
            use_counterexamples=False, use_reachability_heuristic=False,
        )
        assert with_cex.stats.model_checks <= without_cex.stats.model_checks

    def test_reachability_heuristic_avoids_backtracking(self):
        sc = ring_diamond(24, seed=3)
        plan = order_update(sc.topology, sc.init, sc.final, sc.ingresses, sc.spec)
        assert plan.stats.backtracks == 0

    def test_all_backends_agree(self):
        topo, init, final = fig1()
        spec = specs.reachability(TC, "H3")
        orders = set()
        for backend in ("incremental", "batch", "automaton", "netplumber"):
            plan = order_update(topo, init, final, {TC: ["H1"]}, spec, checker=backend)
            orders.add(tuple(plan_order(plan)))
            assert_plan_valid(topo, init, final, {TC: ["H1"]}, spec, plan)

    def test_timeout(self):
        sc = double_diamond(16)
        with pytest.raises((SynthesisTimeout, UpdateInfeasibleError)):
            order_update(
                sc.topology, sc.init, sc.final, sc.ingresses, sc.spec,
                use_early_termination=False, timeout=0.5,
            )


class TestInfeasible:
    def test_double_diamond_infeasible_switch_granularity(self):
        sc = double_diamond(10)
        with pytest.raises(UpdateInfeasibleError) as err:
            order_update(sc.topology, sc.init, sc.final, sc.ingresses, sc.spec)
        assert err.value.reason in ("sat", "search")

    def test_double_diamond_sat_early_termination(self):
        sc = double_diamond(10)
        with pytest.raises(UpdateInfeasibleError) as err:
            order_update(sc.topology, sc.init, sc.final, sc.ingresses, sc.spec)
        # with the optimization on, the SAT solver should fire
        assert err.value.reason == "sat"

    def test_double_diamond_feasible_rule_granularity(self):
        sc = double_diamond(10)
        plan = order_update(
            sc.topology, sc.init, sc.final, sc.ingresses, sc.spec, granularity="rule"
        )
        assert plan.granularity == "rule"
        assert plan.num_updates() > 0
        # replay: every prefix config satisfies the spec
        from repro.net.commands import RuleGranUpdate
        from repro.kripke.structure import rule_covers_class
        from repro.net.rules import Table

        config = sc.init
        for command in plan.updates():
            assert isinstance(command, RuleGranUpdate)
            old = config.table(command.switch)
            kept = old.restrict(lambda r: not rule_covers_class(r, command.tc))
            new = [r for r in command.table if rule_covers_class(r, command.tc)]
            config = config.with_table(command.switch, Table(tuple(kept) + tuple(new)))
            ks = KripkeStructure(sc.topology, config, sc.ingresses)
            assert make_checker("incremental", ks, sc.spec).full_check().ok
        assert config == sc.final


class TestSearchShards:
    def test_first_units_partition_the_unit_list(self):
        units = ["u0", "u1", "u2", "u3", "u4"]
        slices = [SearchShard(i, 3).first_units(units) for i in range(3)]
        assert set().union(*slices) == set(units)
        for i, left in enumerate(slices):
            for right in slices[i + 1 :]:
                assert not left & right

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            SearchShard(0, 0)
        with pytest.raises(ValueError):
            SearchShard(2, 2)
        with pytest.raises(ValueError):
            SearchShard(-1, 2)

    def test_shard_union_covers_feasible_search(self):
        """Racing all shards must find a plan: the winning first unit lives
        in exactly one slice, the other slices report reason="shard"."""
        topo, init, final = fig1()
        spec = specs.reachability(TC, "H3")
        total = 2
        plans, exhausted = [], 0
        for index in range(total):
            try:
                plan = order_update(
                    topo, init, final, {TC: ["H1"]}, spec,
                    shard=SearchShard(index, total),
                )
            except UpdateInfeasibleError as err:
                assert err.reason == "shard"
                exhausted += 1
            else:
                assert plan.stats.shards == total
                assert_plan_valid(topo, init, final, {TC: ["H1"]}, spec, plan)
                plans.append(plan)
        assert plans  # at least one slice holds a viable first unit
        assert len(plans) + exhausted == total

    def test_sharded_exhaustion_is_not_a_global_proof(self):
        """An infeasible instance splits into per-shard "slice exhausted"
        verdicts (reason="shard"), never a claim about the whole space."""
        sc = double_diamond(8, seed=1)
        for index in range(2):
            with pytest.raises(UpdateInfeasibleError) as err:
                order_update(
                    sc.topology, sc.init, sc.final, sc.ingresses, sc.spec,
                    use_early_termination=False,
                    shard=SearchShard(index, 2),
                )
            assert err.value.reason == "shard"

    def test_endpoint_violation_stays_global_under_sharding(self):
        """A violating final configuration refutes the whole problem, not
        one slice: the reason must not degrade to "shard"."""
        topo, init, final = fig1()
        spec = specs.waypoint(TC, "C1", "H3")  # green final avoids C1
        for index in range(2):
            with pytest.raises(UpdateInfeasibleError) as err:
                order_update(
                    topo, init, final, {TC: ["H1"]}, spec,
                    shard=SearchShard(index, 2),
                )
            assert err.value.reason != "shard"

    def test_single_shard_total_behaves_unsharded(self):
        topo, init, final = fig1()
        spec = specs.reachability(TC, "H3")
        sharded = order_update(
            topo, init, final, {TC: ["H1"]}, spec, shard=SearchShard(0, 1)
        )
        plain = order_update(topo, init, final, {TC: ["H1"]}, spec)
        assert plan_order(sharded) == plan_order(plain)


class TestPruningUnits:
    def test_make_formula_flags(self):
        from repro.kripke.structure import KState

        cex = [
            KState("loc", "A", 1, TC),
            KState("loc", "B", 1, TC),
            KState("drop", "C", 1, TC),
        ]
        units = frozenset({"A", "B", "C"})
        pattern = make_formula(cex, frozenset({"A"}), units, rule_granularity=False)
        assert ("A", True) in pattern
        assert ("B", False) in pattern
        assert ("C", False) in pattern

    def test_make_formula_ignores_unmanaged_switches(self):
        from repro.kripke.structure import KState

        cex = [KState("loc", "X", 1, TC)]
        pattern = make_formula(cex, frozenset(), frozenset({"A"}), False)
        assert pattern == frozenset()

    def test_wrong_configs_matching(self):
        wrong = WrongConfigs()
        wrong.add(frozenset({("A", True), ("B", False)}))
        assert wrong.matches(frozenset({"A"}))
        assert wrong.matches(frozenset({"A", "C"}))
        assert not wrong.matches(frozenset({"A", "B"}))
        assert not wrong.matches(frozenset())

    def test_empty_pattern_never_added(self):
        wrong = WrongConfigs()
        wrong.add(frozenset())
        assert len(wrong) == 0
        assert not wrong.matches(frozenset({"A"}))
