"""Tests for the cross-candidate memoization layer (:mod:`repro.perf`)."""

import pickle

import pytest

from repro.errors import MemoMergeError
from repro.kripke.structure import KripkeStructure
from repro.ltl import specs
from repro.ltl.parser import parse
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.net.rules import Forward, Pattern, Rule, Table
from repro.perf import (
    MemoDelta,
    MemoSnapshot,
    SharedVerdictMemo,
    VerdictMemo,
    config_fingerprint,
    reached_state_key,
    scope_fingerprint,
    table_fingerprint,
)
from repro.perf.memo import MemoVerdict
from repro.perf.profile import PROFILE_SCHEMA, run_profile
from repro.scenarios import generate_corpus
from repro.synthesis import UpdateSynthesizer, order_update
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]


def fig1():
    topo = mini_datacenter()
    init = Configuration.from_paths(topo, {TC: RED})
    final = Configuration.from_paths(topo, {TC: GREEN})
    return topo, init, final


def rule(priority, dst, port):
    return Rule(priority, Pattern.make(dst=dst), (Forward(port),))


class TestFingerprints:
    def test_table_fingerprint_ignores_rule_listing_order(self):
        a, b = rule(5, "H1", 1), rule(7, "H2", 2)
        assert table_fingerprint(Table([a, b])) == table_fingerprint(Table([b, a]))

    def test_table_fingerprint_distinguishes_content(self):
        assert table_fingerprint(Table([rule(5, "H1", 1)])) != table_fingerprint(
            Table([rule(5, "H1", 2)])
        )

    def test_config_fingerprint_collides_on_permutations(self):
        topo, init, _ = fig1()
        rules = {sw: list(init.table(sw)) for sw in init.switches()}
        permuted = Configuration(
            {sw: Table(reversed(rs)) for sw, rs in rules.items()}
        )
        assert config_fingerprint(init) == config_fingerprint(permuted)

    def test_scope_fingerprint_ignores_field_and_ingress_order(self):
        topo, _, _ = fig1()
        spec = parse("dst=H3 => F at(H3)")
        tc_a = TrafficClass("t", (("dst", "H3"), ("src", "H1")))
        tc_b = TrafficClass("t", (("src", "H1"), ("dst", "H3")))
        # TrafficClass field tuples are part of equality, so permuted field
        # listings are distinct objects — the scope canonicalization must
        # still collapse them
        assert scope_fingerprint(topo, spec, {tc_a: ["H1", "H2"]}) == scope_fingerprint(
            topo, spec, {tc_b: ["H2", "H1"]}
        )

    def test_scope_fingerprint_distinguishes_specs(self):
        topo, _, _ = fig1()
        ing = {TC: ["H1"]}
        assert scope_fingerprint(topo, parse("F at(H3)"), ing) != scope_fingerprint(
            topo, parse("F at(H1)"), ing
        )


class TestReachedStateKey:
    def test_invalidation_after_apply_update_and_revert(self):
        """A verdict memoized pre-update must not be served post-update."""
        topo, init, final = fig1()
        structure = KripkeStructure(topo, init, {TC: ["H1"]})
        memo = VerdictMemo()
        key_before = reached_state_key(structure)
        memo.record(key_before, True)
        assert memo.lookup(key_before).ok

        structure.update_switch("A1", final.table("A1"))
        key_after = reached_state_key(structure)
        assert key_after != key_before
        assert memo.lookup(key_after) is None  # stale entry never served

        structure.update_switch("A1", init.table("A1"))
        assert reached_state_key(structure) == key_before
        assert memo.lookup(key_before).ok  # reverting re-hits the old entry

    def test_unreachable_update_collapses_onto_same_key(self):
        """Keys see only the reached state: sibling branches that differ in
        unreachable switches share one memo entry."""
        topo, init, final = fig1()
        structure = KripkeStructure(topo, init, {TC: ["H1"]})
        key_before = reached_state_key(structure)
        # C2 is not on the red path, so no packet reaches it
        assert "C2" not in structure.reachable_switches(TC)
        structure.update_switch("C2", final.table("C2"))
        assert reached_state_key(structure) == key_before


class TestVerdictMemo:
    def test_record_and_lookup_counters(self):
        memo = VerdictMemo()
        assert memo.lookup("k") is None
        memo.record("k", False)
        entry = memo.lookup("k")
        assert entry is not None and not entry.ok
        assert memo.stats.probes == 2
        assert memo.stats.hits == 1
        assert memo.stats.refuted_hits == 1
        assert memo.has_refutations

    def test_only_sink_ending_traces_join_the_dominance_store(self):
        topo, init, _ = fig1()
        structure = KripkeStructure(topo, init, {TC: ["H1"]})
        initial = structure.initial_states[0]
        # a genuine maximal trace: walk to the sink
        trace = [initial]
        while not structure.is_sink(trace[-1]):
            trace.append(structure.succ(trace[-1])[0])
        memo = VerdictMemo()
        memo.record("k1", False, trace)
        assert memo.find_refuting_trace(structure) == tuple(trace)
        # a non-maximal prefix (no sink) must not be replayed
        memo2 = VerdictMemo()
        memo2.record("k2", False, trace[:-1])
        assert memo2.find_refuting_trace(structure) is None

    def test_trace_store_eviction_allows_relearning(self):
        """Regression: deque eviction drops the *oldest* trace; its dedup
        entry must go with it so the trace can be learned again later."""
        topo, init, _ = fig1()
        structure = KripkeStructure(topo, init, {TC: ["H1"]})
        initial = structure.initial_states[0]
        trace = [initial]
        while not structure.is_sink(trace[-1]):
            trace.append(structure.succ(trace[-1])[0])
        memo = VerdictMemo(max_traces=2)
        old = tuple(trace)
        filler1 = old[:-1] + (old[-1],) * 2  # distinct tuples, same states
        filler2 = old[:-1] + (old[-1],) * 3
        memo.record("k1", False, old)
        memo.record("k2", False, filler1)
        memo.record("k3", False, filler2)  # evicts `old` from the deque
        assert memo.find_refuting_trace(structure) != old
        memo.record("k4", False, old)  # must be re-learnable
        assert memo.find_refuting_trace(structure) == old

    def test_trace_replay_rejects_mutated_structures(self):
        topo, init, final = fig1()
        structure = KripkeStructure(topo, init, {TC: ["H1"]})
        initial = structure.initial_states[0]
        trace = [initial]
        while not structure.is_sink(trace[-1]):
            trace.append(structure.succ(trace[-1])[0])
        memo = VerdictMemo()
        memo.record("k", False, trace)
        # rerouting A1 breaks an edge of the trace: it must not re-embed
        structure.update_switch("A1", final.table("A1"))
        assert memo.find_refuting_trace(structure) is None


def _sink_trace(structure):
    """A genuine maximal trace: walk from an initial state to the sink."""
    trace = [structure.initial_states[0]]
    while not structure.is_sink(trace[-1]):
        trace.append(structure.succ(trace[-1])[0])
    return tuple(trace)


class TestSnapshotMerge:
    SPEC = parse("dst=H3 => F at(H3)")

    def seeded_pool(self):
        topo, init, _ = fig1()
        structure = KripkeStructure(topo, init, {TC: ["H1"]})
        trace = _sink_trace(structure)
        pool = SharedVerdictMemo()
        memo = pool.memo_for(topo, self.SPEC, {TC: ["H1"]})
        memo.record("k-ok", True)
        memo.record("k-bad", False, trace)
        return topo, structure, trace, pool

    def test_from_snapshot_seeds_verdicts_and_traces(self):
        topo, structure, trace, pool = self.seeded_pool()
        clone = SharedVerdictMemo.from_snapshot(pool.snapshot())
        memo = clone.memo_for(topo, self.SPEC, {TC: ["H1"]})
        assert memo.lookup("k-ok").ok
        assert not memo.lookup("k-bad").ok
        assert memo.find_refuting_trace(structure) == trace
        assert memo.has_refutations
        # seeding is context, not learning: only this process's probes count
        assert memo.stats.probes == 2 and memo.stats.inserts == 0

    def test_snapshot_scope_filter(self):
        topo, _, _, pool = self.seeded_pool()
        scope = scope_fingerprint(topo, self.SPEC, {TC: ["H1"]})
        assert len(pool.snapshot(scopes=(scope,))) == 2
        assert len(pool.snapshot(scopes=("no-such-scope",))) == 0
        assert len(pool.snapshot()) == 2

    def test_snapshot_survives_pickling(self):
        topo, structure, trace, pool = self.seeded_pool()
        snapshot = pickle.loads(pickle.dumps(pool.snapshot()))
        memo = SharedVerdictMemo.from_snapshot(snapshot).memo_for(
            topo, self.SPEC, {TC: ["H1"]}
        )
        assert memo.lookup("k-ok").ok
        assert memo.find_refuting_trace(structure) == trace

    def test_pickling_strips_cached_hashes(self):
        """Cached hashes are process-salt-specific; pickles must drop them
        so the receiving process rehashes equal objects consistently."""
        topo, init, _ = fig1()
        table = init.table("T1")
        hash(table)  # populate the cache
        clone = pickle.loads(pickle.dumps(table))
        assert clone._hash is None
        assert clone == table and hash(clone) == hash(table)
        state = KripkeStructure(topo, init, {TC: ["H1"]}).initial_states[0]
        hash(state)
        state_clone = pickle.loads(pickle.dumps(state))
        assert "_hash" not in state_clone.__dict__
        assert state_clone == state and hash(state_clone) == hash(state)

    def test_drain_deltas_reports_only_new_entries(self):
        topo, _, _, pool = self.seeded_pool()
        worker = SharedVerdictMemo.from_snapshot(pool.snapshot(), track_deltas=True)
        assert len(worker.drain_deltas()) == 0  # the seed is not a delta
        memo = worker.memo_for(topo, self.SPEC, {TC: ["H1"]})
        memo.record("k-new", False)
        drained = worker.drain_deltas()
        assert len(drained) == 1
        assert drained.deltas[0].entries[0][0] == "k-new"
        assert worker.drain_deltas().deltas == ()  # drained means drained

    def test_merge_is_idempotent_and_conflict_checked(self):
        topo, _, _, pool = self.seeded_pool()
        worker = SharedVerdictMemo.from_snapshot(pool.snapshot(), track_deltas=True)
        memo = worker.memo_for(topo, self.SPEC, {TC: ["H1"]})
        memo.record("k-new", False)
        memo.lookup("k-ok")
        delta = worker.drain_deltas()
        assert pool.merge(delta) == 1
        assert pool.merge(delta) == 0  # racing workers may resend entries
        merged_memo = pool.memo_for(topo, self.SPEC, {TC: ["H1"]})
        assert not merged_memo.lookup("k-new").ok
        assert merged_memo.stats.merged == 1
        # the worker's probe counters were absorbed exactly once... plus the
        # two lookups this test just made
        assert pool.stats().probes >= 1
        scope = scope_fingerprint(topo, self.SPEC, {TC: ["H1"]})
        conflicting = MemoDelta(
            scope=scope,
            entries=(
                ("k-fresh", MemoVerdict(True)),  # unseen, would be new
                ("k-new", MemoVerdict(True)),    # contradicts the pool
            ),
        )
        with pytest.raises(MemoMergeError):
            pool.merge(MemoSnapshot(deltas=(conflicting,)))
        # the refused snapshot must be applied atomically: the entry that
        # preceded the conflict is not kept either
        assert merged_memo.lookup("k-fresh") is None

    def test_snapshot_entry_cap_keeps_most_recent(self):
        topo, _, _, pool = self.seeded_pool()
        memo = pool.memo_for(topo, self.SPEC, {TC: ["H1"]})
        for i in range(8):
            memo.record(f"k-extra-{i}", True)
        capped = pool.snapshot(max_entries_per_scope=3)
        assert len(capped) == 3
        keys = [key for key, _ in capped.deltas[0].entries]
        assert keys == ["k-extra-5", "k-extra-6", "k-extra-7"]
        assert len(pool.snapshot(max_entries_per_scope=None)) == 10


class TestSharedMemoAcrossJobs:
    def test_repeat_job_skips_model_checks_and_preserves_the_plan(self):
        records = generate_corpus("smoke", quick=True)
        record = next(
            r for r in records if r.scenario_id == "diamond/chained2x2/chain/baseline"
        )
        problem = record.problem
        pool = SharedVerdictMemo()
        plans, checks = [], []
        for _ in range(2):
            synth = UpdateSynthesizer(
                problem.topology, granularity=record.granularity, memo_pool=pool
            )
            plan = synth.synthesize(
                problem.init, problem.final, problem.spec, problem.ingresses
            )
            plans.append(str(plan))
            checks.append(plan.stats.model_checks)
        assert plans[0] == plans[1]
        assert checks[1] < checks[0]  # verdicts were shared across the jobs
        assert pool.stats().checks_skipped > 0

    def test_pool_scopes_by_spec(self):
        topo, init, final = fig1()
        pool = SharedVerdictMemo()
        a = pool.memo_for(topo, parse("F at(H3)"), {TC: ["H1"]})
        b = pool.memo_for(topo, parse("F at(H1)"), {TC: ["H1"]})
        assert a is not b
        assert pool.memo_for(topo, parse("F at(H3)"), {TC: ["H1"]}) is a


class TestMemoEquivalence:
    def test_memo_on_off_identical_plans_on_smoke_suite(self):
        """The acceptance regression: memoization must be verdict-preserving
        on every smoke scenario — same status, identical plan."""
        records = generate_corpus("smoke", quick=True)
        pool = SharedVerdictMemo()
        for record in records:
            problem = record.problem
            outcomes = {}
            for memoize in (True, False):
                synth = UpdateSynthesizer(
                    problem.topology,
                    granularity=record.granularity,
                    memoize=memoize,
                    memo_pool=pool if memoize else None,
                )
                try:
                    plan = synth.synthesize(
                        problem.init, problem.final, problem.spec, problem.ingresses
                    )
                    outcomes[memoize] = ("done", str(plan))
                except Exception as err:  # noqa: BLE001 — compare verdicts
                    outcomes[memoize] = (type(err).__name__, None)
            assert outcomes[True] == outcomes[False], record.scenario_id

    def test_order_update_accepts_explicit_memo(self):
        topo, init, final = fig1()
        spec = specs.reachability(TC, "H3")
        memo = VerdictMemo()
        # without the heuristic the search tries A1 before C2 and gets
        # refuted, so the memo genuinely sees a verdict
        plan_memo = order_update(
            topo, init, final, {TC: ["H1"]}, spec,
            memo=memo, use_reachability_heuristic=False,
        )
        plan_plain = order_update(
            topo, init, final, {TC: ["H1"]}, spec,
            memo=None, use_reachability_heuristic=False,
        )
        assert str(plan_memo) == str(plan_plain)
        assert plan_memo.stats.counterexamples > 0
        assert memo.stats.inserts > 0  # the search fed the memo


class TestProfileHarness:
    def test_profile_document_schema_and_phases(self):
        document = run_profile("smoke", quick=True)
        assert document["schema"] == PROFILE_SCHEMA
        totals = document["totals"]
        assert totals["scenarios"] == len(document["scenarios"])
        assert set(totals["phases"]) == {
            "labeling",
            "sat_ordering",
            "wait_removal",
            "memo_probes",
            "other",
        }
        for row in document["scenarios"]:
            assert row["status"] in ("done", "infeasible", "timeout")
            if "phases" in row:
                # attributed phases never exceed the measured wall time
                attributed = sum(
                    v for k, v in row["phases"].items() if k != "other"
                )
                assert attributed <= row["seconds"] + 1e-6
        assert "memo_pool" in totals

    def test_profile_no_memo(self):
        document = run_profile("smoke", quick=True, memoize=False)
        assert document["memoize"] is False
        assert document["totals"]["memo_probes"] == 0
        assert "memo_pool" not in document["totals"]

    def test_profile_unknown_suite(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_profile("no-such-suite")
