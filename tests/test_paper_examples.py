"""Integration tests replaying the paper's §2 narrative end to end.

Each test corresponds to a claim made in the overview section:

1. red -> green requires C2 before A1 (naive order breaks connectivity);
2. red -> blue admits *no* consistent (trace-equivalence-preserving)
   ordering, but relaxing to "visit A2 or A3" makes it synthesizable;
3. the synthesized red -> blue sequence needs a wait before C1;
4. two-phase would keep both rule versions (cost), ordering does not.
"""

import pytest

from repro import Configuration, TrafficClass, UpdateSynthesizer, specs
from repro.errors import UpdateInfeasibleError
from repro.ltl import parse
from repro.net.commands import SwitchUpdate, Wait
from repro.net.fields import packet_for_class
from repro.net.machine import NetworkMachine
from repro.net.trace import trace_satisfies
from repro.runtime import TwoPhaseStrategy, OrderedStrategy, run_update_experiment
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
BLUE = ["H1", "T1", "A2", "C1", "A4", "T3", "H3"]


@pytest.fixture
def fig1():
    topo = mini_datacenter()
    return topo, Configuration.from_paths(topo, {TC: RED})


class TestRedToGreen:
    def test_synthesized_order_is_c2_first(self, fig1):
        topo, init = fig1
        final = Configuration.from_paths(topo, {TC: GREEN})
        plan = UpdateSynthesizer(topo).synthesize(
            init, final, specs.reachability(TC, "H3"), {TC: ["H1"]}
        )
        order = [c.switch for c in plan.updates()]
        assert order.index("C2") < order.index("A1")

    def test_naive_order_breaks_connectivity(self, fig1):
        """Updating A1 followed by C2 forwards packets to C2 before it is
        ready (the paper's Figure 2(a) failure)."""
        topo, init = fig1
        final = Configuration.from_paths(topo, {TC: GREEN})
        machine = NetworkMachine(topo, init, seed=1)
        machine.set_commands(
            [SwitchUpdate("A1", final.table("A1")), Wait(),
             SwitchUpdate("C2", final.table("C2"))]
        )

        def burst():
            for _ in range(4):
                machine.inject("H1", packet_for_class(TC), TC)

        machine.run_commands_carefully(burst)
        assert any(o == "dropped" for o in machine.outcome.values())


class TestRedToBlue:
    def test_no_consistent_ordering_exists(self, fig1):
        """With strict per-path consistency (traffic must use exactly the red
        or exactly the blue path), no switch order works: the mixed paths
        T1-A2-C1-A3-T3 and T1-A1-C1-A4-T3 are unavoidable."""
        topo, init = fig1
        final = Configuration.from_paths(topo, {TC: BLUE})
        # consistency as an LTL property: the path is exactly red or blue,
        # expressed via the distinguishing cores: (A1 and A3) or (A2 and A4)
        strict = parse(
            "dst=H3 => ((F at(A1) & F at(A3) & F at(H3))"
            " | (F at(A2) & F at(A4) & F at(H3)))"
        )
        with pytest.raises(UpdateInfeasibleError):
            UpdateSynthesizer(topo).synthesize(init, final, strict, {TC: ["H1"]})

    def test_relaxed_spec_is_synthesizable(self, fig1):
        topo, init = fig1
        final = Configuration.from_paths(topo, {TC: BLUE})
        spec = specs.waypoint_choice(TC, ["A2", "A3"], "H3")
        plan = UpdateSynthesizer(topo).synthesize(init, final, spec, {TC: ["H1"]})
        order = [c.switch for c in plan.updates()]
        # the paper's ordering: A2 and A4 (unreachable) first, then T1, then C1
        assert order.index("A2") < order.index("T1")
        assert order.index("A4") < order.index("C1")
        assert order.index("T1") < order.index("C1")

    def test_wait_survives_between_t1_and_c1(self, fig1):
        """The paper: 'the correct update sequence ... with a wait between T1
        and C1'.  Wait removal must keep a wait separating them."""
        topo, init = fig1
        final = Configuration.from_paths(topo, {TC: BLUE})
        spec = specs.waypoint_choice(TC, ["A2", "A3"], "H3")
        plan = UpdateSynthesizer(topo).synthesize(init, final, spec, {TC: ["H1"]})
        commands = list(plan.commands)
        t1 = next(i for i, c in enumerate(commands)
                  if isinstance(c, SwitchUpdate) and c.switch == "T1")
        c1 = next(i for i, c in enumerate(commands)
                  if isinstance(c, SwitchUpdate) and c.switch == "C1")
        assert t1 < c1
        assert any(isinstance(c, Wait) for c in commands[t1:c1])

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_executed_plan_never_bypasses_scrubbers(self, fig1, seed):
        topo, init = fig1
        final = Configuration.from_paths(topo, {TC: BLUE})
        spec = specs.waypoint_choice(TC, ["A2", "A3"], "H3")
        plan = UpdateSynthesizer(topo).synthesize(init, final, spec, {TC: ["H1"]})
        machine = NetworkMachine(topo, init, seed=seed)
        machine.set_commands(list(plan.commands))

        def burst():
            for _ in range(3):
                machine.inject("H1", packet_for_class(TC), TC)

        machine.run_commands_carefully(burst)
        for trace in machine.completed_traces().values():
            assert trace_satisfies(spec, trace)


class TestTwoPhaseComparison:
    def test_two_phase_rule_cost_vs_ordering(self, fig1):
        """Figure 2(b): two-phase doubles rules on shared switches; the
        synthesized ordering update never exceeds steady-state rules."""
        topo, init = fig1
        final = Configuration.from_paths(topo, {TC: GREEN})
        flows = {TC: ("H1", "H3")}
        plan = UpdateSynthesizer(topo).synthesize(
            init, final, specs.reachability(TC, "H3"), {TC: ["H1"]}
        )
        two_phase = run_update_experiment(
            topo, init, final, flows, TwoPhaseStrategy(topo, init, final, flows)
        )
        ordering = run_update_experiment(
            topo, init, final, flows, OrderedStrategy(plan, final)
        )
        assert two_phase.loss_fraction() == 0.0
        assert ordering.loss_fraction() == 0.0
        doubled = [sw for sw, v in two_phase.overhead.items() if v >= 2.0]
        assert len(doubled) >= 2
        assert max(ordering.overhead.values()) <= 1.0
