"""Tests for the OpenFlow runtime, simulator, and update strategies."""

import pytest

from repro import Configuration, TrafficClass, UpdateSynthesizer, specs
from repro.net.rules import Forward, Pattern, Rule, Table
from repro.runtime import (
    NaiveStrategy,
    OrderedStrategy,
    TwoPhaseStrategy,
    run_update_experiment,
)
from repro.runtime.openflow import FlowMod, SwitchAgent
from repro.runtime.simulator import TickSimulator
from repro.runtime import twophase
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]


def scenario():
    topo = mini_datacenter()
    init = Configuration.from_paths(topo, {TC: RED})
    final = Configuration.from_paths(topo, {TC: GREEN})
    return topo, init, final, {TC: ("H1", "H3")}


def rule(priority, port, **fields):
    return Rule(priority, Pattern.make(**fields), (Forward(port),))


class TestSwitchAgent:
    def test_flowmod_latency(self):
        agent = SwitchAgent("S", Table(), install_latency=3)
        agent.enqueue(FlowMod("add", rule(10, 1)))
        agent.tick()
        agent.tick()
        assert agent.rule_count() == 0
        agent.tick()
        assert agent.rule_count() == 1

    def test_remove_missing_rule_noop(self):
        agent = SwitchAgent("S", Table(), install_latency=1)
        agent.enqueue(FlowMod("remove", rule(10, 1)))
        agent.tick()
        assert agent.rule_count() == 0

    def test_max_rules_tracks_peak(self):
        agent = SwitchAgent("S", Table([rule(10, 1)]), install_latency=1)
        agent.enqueue(FlowMod("add", rule(20, 2)))
        agent.enqueue(FlowMod("remove", rule(10, 1)))
        agent.tick()
        agent.tick()
        assert agent.rule_count() == 1
        assert agent.max_rules == 2

    def test_atomic_bundle_never_mixes(self):
        old = rule(10, 1, dst="H3")
        new = rule(10, 2, dst="H3")
        agent = SwitchAgent("S", Table([old]), install_latency=1)
        agent.enqueue_atomic_replacement(Table([new]))
        # during installation the old table stays active
        agent.tick()
        counts = {agent.rule_count()}
        while not agent.barrier_done():
            agent.tick()
            counts.add(agent.rule_count())
        assert counts == {1}
        assert agent.max_rules == 1
        assert agent.table == Table([new])

    def test_barrier(self):
        agent = SwitchAgent("S", Table(), install_latency=1)
        assert agent.barrier_done()
        agent.enqueue(FlowMod("add", rule(10, 1)))
        assert not agent.barrier_done()
        agent.tick()
        assert agent.barrier_done()


class TestSimulator:
    def test_probes_delivered_steady_state(self):
        topo, init, _final, flows = scenario()
        sim = TickSimulator(topo, init, flows)
        sim.run(50)
        sim.drain()
        lost, sent = sim.stats.loss_window()
        assert sent > 0
        assert lost == 0

    def test_blackhole_loses_probes(self):
        topo, init, _final, flows = scenario()
        sim = TickSimulator(topo, Configuration.empty(), flows)
        sim.run(30)
        sim.drain()
        lost, sent = sim.stats.loss_window()
        assert lost == sent

    def test_delivery_series_buckets(self):
        topo, init, _final, flows = scenario()
        sim = TickSimulator(topo, init, flows)
        sim.run(60)
        sim.drain()
        series = sim.stats.delivery_series(bucket=20)
        assert len(series) >= 3
        assert all(0.0 <= frac <= 1.0 for _, frac in series)


class TestTwoPhaseRules:
    def test_versioned_rules_match_only_stamped(self):
        topo, _init, final, _flows = scenario()
        v2 = twophase.versioned_rules(final)
        for rules in v2.values():
            for r in rules:
                assert ("ver", "2") in r.pattern.fields

    def test_stamping_rule_forwards_like_final(self):
        topo, _init, final, flows = scenario()
        stamps = twophase.stamping_rules(topo, final, flows)
        assert "T1" in stamps
        (stamp,) = stamps["T1"]
        # the stamp sends out the same port the final config uses
        from repro.net.fields import packet_for_class

        _, port = final.table("T1").process(packet_for_class(TC), 0)[0]
        out = stamp.apply(packet_for_class(TC), 0)
        assert out[0][1] == port
        assert out[0][0].get("ver") == "2"

    def test_missing_ingress_rule_rejected(self):
        topo, _init, _final, flows = scenario()
        with pytest.raises(Exception):
            twophase.stamping_rules(topo, Configuration.empty(), flows)

    def test_steady_state_counts(self):
        topo, _init, final, flows = scenario()
        steady = twophase.steady_state(topo, final, flows)
        assert steady.rule_count("T1") == final.rule_count("T1") + 1  # + stamp

    def test_stamping_pattern_fields_are_canonically_sorted(self):
        """Regression: stamp patterns used the class's raw field listing
        while versioned_rules sorts — unsorted listings broke pattern
        equality/hash against normalized tables."""
        topo, _init, final, _flows = scenario()
        unsorted_tc = TrafficClass("f13", (("src", "H1"), ("dst", "H3")))
        stamps = twophase.stamping_rules(topo, final, {unsorted_tc: ("H1", "H3")})
        (stamp,) = stamps["T1"]
        assert stamp.pattern.fields == tuple(sorted(unsorted_tc.fields))
        sorted_tc = TrafficClass("f13", tuple(sorted(unsorted_tc.fields)))
        canonical = twophase.stamping_rules(topo, final, {sorted_tc: ("H1", "H3")})
        assert stamp.pattern == canonical["T1"][0].pattern
        assert hash(stamp.pattern) == hash(canonical["T1"][0].pattern)

    def test_multicast_ingress_rejected(self):
        """A final config that multicasts at the ingress cannot be stamped
        by one forwarding rule; dropping copies silently is a bug."""
        from repro.errors import ConfigurationError
        from repro.net.rules import SetField

        topo, _init, final, flows = scenario()
        table = final.table("T1")
        multicast = Rule(
            max(r.priority for r in table) + 1,
            Pattern.make(dst="H3"),
            (Forward(1), SetField("typ", "copy"), Forward(2)),
        )
        broken = final.with_table("T1", Table(tuple(table) + (multicast,)))
        with pytest.raises(ConfigurationError, match="multicast"):
            twophase.stamping_rules(topo, broken, flows)


class TestStrategies:
    def test_naive_bad_order_loses_probes(self):
        topo, init, final, flows = scenario()
        result = run_update_experiment(
            topo, init, final, flows, NaiveStrategy(final, order=["A1", "C1", "C2"])
        )
        assert result.loss_fraction() > 0

    def test_ordering_is_lossless(self):
        topo, init, final, flows = scenario()
        plan = UpdateSynthesizer(topo).synthesize(
            init, final, specs.reachability(TC, "H3"), {TC: ["H1"]}
        )
        result = run_update_experiment(topo, init, final, flows, OrderedStrategy(plan, final))
        assert result.loss_fraction() == 0.0

    def test_two_phase_is_lossless_but_doubles_rules(self):
        topo, init, final, flows = scenario()
        result = run_update_experiment(
            topo, init, final, flows, TwoPhaseStrategy(topo, init, final, flows)
        )
        assert result.loss_fraction() == 0.0
        assert max(result.overhead.values()) >= 2.0

    def test_ordering_overhead_stays_at_one(self):
        topo, init, final, flows = scenario()
        plan = UpdateSynthesizer(topo).synthesize(
            init, final, specs.reachability(TC, "H3"), {TC: ["H1"]}
        )
        result = run_update_experiment(topo, init, final, flows, OrderedStrategy(plan, final))
        assert max(result.overhead.values()) <= 1.0
