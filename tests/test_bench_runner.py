"""Tests for the ``repro bench`` harness: BENCH schema, compare gate, CLI."""

import copy
import json

import pytest

from repro.bench.runner import (
    BENCH_SCHEMA,
    compare_runs,
    load_bench,
    run_suite,
    write_bench,
)
from repro.cli import main
from repro.errors import ReproError


@pytest.fixture(scope="module")
def smoke_document():
    return run_suite("smoke", quick=True, workers=0, timeout=60.0)


class TestRunSuite:
    def test_schema_and_coverage_contract(self, smoke_document):
        doc = smoke_document
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["suite"] == "smoke"
        assert doc["totals"]["scenarios"] >= 20
        assert len(doc["corpus"]["families"]) >= 3
        assert len(doc["corpus"]["templates"]) >= 3
        assert doc["totals"]["expected_mismatches"] == []
        # sharding config is part of the document identity (default: off)
        assert doc["shards"] == 1
        assert all("shards" not in row for row in doc["scenarios"])

    def test_rows_carry_perf_counters(self, smoke_document):
        rows = smoke_document["scenarios"]
        assert rows == sorted(rows, key=lambda r: r["id"])
        done = [r for r in rows if r["status"] == "done"]
        assert done
        for row in done:
            assert row["seconds"] >= 0.0
            assert row["model_checks"] > 0
            assert row["plan_commands"] >= row["plan_updates"]
            assert row["granularity"] in ("switch", "rule")
        infeasible = [r for r in rows if r["status"] == "infeasible"]
        assert infeasible, "the double diamond must prove infeasible"
        assert all("plan_commands" not in r for r in infeasible)

    def test_document_round_trips_to_disk(self, tmp_path, smoke_document):
        path = tmp_path / "BENCH_smoke.json"
        write_bench(smoke_document, str(path))
        assert load_bench(str(path))["totals"] == smoke_document["totals"]

    def test_load_rejects_non_bench_documents(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ReproError):
            load_bench(str(path))

    def test_shards_require_a_pool(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="--shards"):
            run_suite("smoke", quick=True, workers=0, shards=4)

    def test_unknown_suite_raises(self):
        with pytest.raises(ReproError):
            run_suite("no-such-suite")


class TestMemoizeFlag:
    def test_document_records_memoize_and_counters(self, smoke_document):
        assert smoke_document["memoize"] is True
        assert "memo_pruned" in smoke_document["totals"]
        done_rows = [
            r for r in smoke_document["scenarios"] if r["status"] == "done"
        ]
        assert all("memo_probes" in r for r in done_rows)
        assert "verdict_memo" in smoke_document["service"]

    def test_memo_off_produces_identical_verdicts_and_plan_shapes(
        self, smoke_document
    ):
        off = run_suite("smoke", quick=True, workers=0, timeout=60.0, memoize=False)
        assert off["memoize"] is False
        on_rows = {r["id"]: r for r in smoke_document["scenarios"]}
        for row in off["scenarios"]:
            base = on_rows[row["id"]]
            assert row["status"] == base["status"], row["id"]
            for field in ("plan_commands", "plan_updates", "plan_waits"):
                assert row.get(field) == base.get(field), row["id"]
            assert "memo_probes" not in row


class TestCompare:
    def test_identical_runs_pass(self, smoke_document):
        comparison = compare_runs(smoke_document, smoke_document, threshold=2.0)
        assert comparison.ok
        assert comparison.regressions == []

    def test_injected_2x_slowdown_flags_regression(self, smoke_document):
        slow = copy.deepcopy(smoke_document)
        for row in slow["scenarios"]:
            row["seconds"] = row["seconds"] * 2.0 + 0.1
        slow["totals"]["busy_seconds"] = sum(r["seconds"] for r in slow["scenarios"])
        comparison = compare_runs(smoke_document, slow, threshold=2.0)
        assert not comparison.ok
        assert any("slower" in r for r in comparison.regressions)

    def test_sub_floor_noise_is_ignored(self, smoke_document):
        noisy = copy.deepcopy(smoke_document)
        for row in noisy["scenarios"]:
            row["seconds"] = 0.019  # below the 0.02 floor: measurement noise
        noisy["totals"]["busy_seconds"] = smoke_document["totals"]["busy_seconds"]
        assert compare_runs(smoke_document, noisy, threshold=2.0).ok

    def test_status_flip_is_a_regression(self, smoke_document):
        flipped = copy.deepcopy(smoke_document)
        flipped["scenarios"][0]["status"] = "error"
        comparison = compare_runs(smoke_document, flipped, threshold=2.0)
        assert any("status changed" in r for r in comparison.regressions)

    def test_missing_scenario_is_a_regression_new_is_a_note(self, smoke_document):
        pruned = copy.deepcopy(smoke_document)
        dropped = pruned["scenarios"].pop(0)
        comparison = compare_runs(smoke_document, pruned, threshold=2.0)
        assert any("missing" in r for r in comparison.regressions)
        grown = copy.deepcopy(smoke_document)
        extra = dict(dropped, id="extra/new/scenario")
        grown["scenarios"].append(extra)
        comparison = compare_runs(smoke_document, grown, threshold=2.0)
        assert comparison.ok
        assert any("new scenario" in n for n in comparison.notes)

    def test_model_check_blowup_is_a_regression(self, smoke_document):
        blown = copy.deepcopy(smoke_document)
        for row in blown["scenarios"]:
            if "model_checks" in row:
                row["model_checks"] = (row["model_checks"] + 20) * 10
        comparison = compare_runs(smoke_document, blown, threshold=2.0)
        assert any("model checks" in r for r in comparison.regressions)

    def test_median_speedup_reported(self, smoke_document):
        baseline = copy.deepcopy(smoke_document)
        current = copy.deepcopy(smoke_document)
        for row in baseline["scenarios"]:
            row["seconds"] = 0.1  # well above the resolution floor
        for row in current["scenarios"]:
            row["seconds"] = 0.05  # uniformly 2x faster
        comparison = compare_runs(baseline, current)
        assert comparison.ok
        assert comparison.median_speedup == pytest.approx(2.0, rel=1e-3)
        assert any("median per-scenario speedup" in n for n in comparison.notes)
        assert comparison.as_dict()["median_speedup"] == comparison.median_speedup

    def test_median_speedup_ignores_noise_and_status_flips(self, smoke_document):
        baseline = copy.deepcopy(smoke_document)
        current = copy.deepcopy(smoke_document)
        # all rows sub-floor on both sides: no signal, no median at all —
        # in particular a 0-second row must not mint an absurd ratio
        for row in baseline["scenarios"]:
            row["seconds"] = 0.0002
        for row in current["scenarios"]:
            row["seconds"] = 0.0
        comparison = compare_runs(baseline, current)
        assert comparison.median_speedup is None

    def test_bad_threshold_rejected(self, smoke_document):
        with pytest.raises(ReproError):
            compare_runs(smoke_document, smoke_document, threshold=1.0)


class TestCli:
    def test_bench_cli_writes_document_and_compares(self, tmp_path, capsys):
        out = tmp_path / "BENCH_smoke.json"
        assert main(["bench", "--suite", "smoke", "--quick", "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        document = load_bench(str(out))
        assert document["totals"]["scenarios"] >= 20

        # identical runs: exit 0
        assert main(["bench", "--compare", str(out), str(out)]) == 0

        # injected 2x slowdown: exit non-zero
        slow_path = tmp_path / "BENCH_slow.json"
        slow = copy.deepcopy(document)
        for row in slow["scenarios"]:
            row["seconds"] = row["seconds"] * 2.0 + 0.1
        slow["totals"]["busy_seconds"] = sum(r["seconds"] for r in slow["scenarios"])
        write_bench(slow, str(slow_path))
        assert main(["bench", "--compare", str(out), str(slow_path)]) != 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_cli_requires_suite_or_compare(self, capsys):
        assert main(["bench"]) == 1
        assert "needs --suite" in capsys.readouterr().err

    def test_corpus_cli_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        assert main(["corpus", "--suite", "smoke", "--quick", "-o", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert len(lines) >= 20
        assert all(json.loads(line)["id"] for line in lines)

    def test_corpus_cli_stdout_deterministic(self, capsys):
        assert main(["corpus", "--suite", "smoke", "--quick", "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["corpus", "--suite", "smoke", "--quick", "--seed", "3"]) == 0
        assert capsys.readouterr().out == first


class TestBatchEmptyInput:
    """Regression: an empty JSONL file is a valid, empty batch."""

    def test_empty_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["batch", str(path)]) == 0
        assert capsys.readouterr().out == ""

    def test_comments_and_blank_lines_only(self, tmp_path, capsys):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n# nothing but comments\n\n")
        assert main(["batch", str(path), "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert '"submitted": 0' in captured.err

    def test_utf8_bom_only_file(self, tmp_path):
        path = tmp_path / "bom.jsonl"
        path.write_bytes(b"\xef\xbb\xbf\n")
        assert main(["batch", str(path)]) == 0
