"""Property tests for Lemma 1: machine traces correspond to Kripke traces.

For random static configurations, every completed single-packet trace of the
operational machine must be a path of the Kripke structure (same node/port
skeleton), and conversely every maximal Kripke path must be realizable by
some machine execution.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.kripke.structure import KripkeStructure
from repro.net.config import Configuration
from repro.net.fields import TrafficClass, packet_for_class
from repro.net.machine import NetworkMachine
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")

PATHS = [
    ["H1", "T1", "A1", "C1", "A3", "T3", "H3"],
    ["H1", "T1", "A1", "C2", "A3", "T3", "H3"],
    ["H1", "T1", "A2", "C1", "A4", "T3", "H3"],
    ["H1", "T1", "A2", "C2", "A4", "T3", "H3"],
    ["H1", "T1", "A1", "C1", "A4", "T3", "H3"],
]


def kripke_skeletons(ks):
    """(node, port) skeletons of all maximal Kripke paths, self-loop cut."""
    skeletons = set()
    for path in ks.maximal_paths():
        skeleton = []
        for state in path:
            if state.kind == "loc":
                skeleton.append((state.node, state.port))
            elif state.kind == "host":
                skeleton.append((state.node, None))
            else:  # drop sink: machine records the drop at the same location
                skeleton.append((state.node, state.port, "drop"))
        skeletons.add(tuple(skeleton))
    return skeletons


def machine_skeleton(trace):
    skeleton = []
    for view in trace:
        if view.dropped:
            skeleton.append((view.node, view.port, "drop"))
        else:
            skeleton.append((view.node, view.port))
    return tuple(skeleton)


@given(
    path=st.sampled_from(PATHS),
    drop_at=st.sampled_from([None, "A1", "C1", "A3", "T3", "C2", "A2", "A4"]),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=120, deadline=None)
def test_machine_traces_are_kripke_traces(path, drop_at, seed):
    topo = mini_datacenter()
    config = Configuration.from_paths(topo, {TC: path})
    if drop_at is not None:
        # blackhole the configuration at one switch
        config = config.with_table(drop_at, Configuration.empty().table(drop_at))
    ks = KripkeStructure(topo, config, {TC: ["H1"]})
    machine = NetworkMachine(topo, config, seed=seed)
    for _ in range(3):
        machine.inject("H1", packet_for_class(TC), TC)
    machine.drain()
    expected = kripke_skeletons(ks)
    for trace in machine.completed_traces().values():
        assert machine_skeleton(trace) in expected


@pytest.mark.parametrize("path", PATHS)
def test_every_kripke_path_realizable(path):
    topo = mini_datacenter()
    config = Configuration.from_paths(topo, {TC: path})
    ks = KripkeStructure(topo, config, {TC: ["H1"]})
    machine = NetworkMachine(topo, config, seed=0)
    machine.inject("H1", packet_for_class(TC), TC)
    machine.drain()
    observed = {machine_skeleton(t) for t in machine.completed_traces().values()}
    # deterministic single-path configs: the one Kripke path is realized
    assert observed == kripke_skeletons(ks)
