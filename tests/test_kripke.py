"""Tests for the Kripke structure builder and incremental updates."""

import pytest

from repro.errors import ForwardingLoopError
from repro.kripke.structure import KripkeStructure, rule_covers_class
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.net.rules import Forward, Pattern, Rule, Table
from repro.net.topology import Topology
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]


@pytest.fixture
def topo():
    return mini_datacenter()


def build(topo, path):
    config = Configuration.from_paths(topo, {TC: path})
    return KripkeStructure(topo, config, {TC: ["H1"]})


class TestBuild:
    def test_states_along_path(self, topo):
        ks = build(topo, RED)
        locs = [s for s in ks.states() if s.kind == "loc"]
        assert {s.node for s in locs} == {"T1", "A1", "C1", "A3", "T3"}
        hosts = [s for s in ks.states() if s.kind == "host"]
        assert {s.node for s in hosts} == {"H3"}

    def test_initial_state_is_ingress(self, topo):
        ks = build(topo, RED)
        (init,) = ks.initial_states
        assert init.node == "T1"
        assert init.tc == TC

    def test_host_sink_self_loops(self, topo):
        ks = build(topo, RED)
        host = next(s for s in ks.states() if s.kind == "host")
        assert ks.is_sink(host)
        assert ks.succ(host) == (host,)
        assert ks.rank(host) == 0

    def test_ranks_decrease_along_path(self, topo):
        ks = build(topo, RED)
        (init,) = ks.initial_states
        # T1 -> A1 -> C1 -> A3 -> T3 -> H3 is five edges to the sink
        assert ks.rank(init) == 5

    def test_empty_config_drops_at_ingress(self, topo):
        ks = KripkeStructure(topo, Configuration.empty(), {TC: ["H1"]})
        (init,) = ks.initial_states
        (succ,) = ks.succ(init)
        assert succ.kind == "drop"
        assert succ.dropped

    def test_preds(self, topo):
        ks = build(topo, RED)
        (init,) = ks.initial_states
        (next_state,) = ks.succ(init)
        assert init in ks.preds(next_state)

    def test_loop_rejected_at_build(self):
        topo = Topology()
        topo.add_switches(["A", "B"])
        topo.add_host("H")
        topo.add_link("H", "A")
        topo.add_link("A", "B")
        rule_ab = Rule(10, Pattern(None, TC.fields), (Forward(topo.port_to("A", "B")),))
        rule_ba = Rule(10, Pattern(None, TC.fields), (Forward(topo.port_to("B", "A")),))
        config = Configuration({"A": Table([rule_ab]), "B": Table([rule_ba])})
        with pytest.raises(ForwardingLoopError) as err:
            KripkeStructure(topo, config, {TC: ["H"]})
        assert err.value.cycle


class TestUpdate:
    def test_update_switch_dirty_set(self, topo):
        ks = build(topo, RED)
        green = Configuration.from_paths(topo, {TC: GREEN})
        dirty = ks.update_switch("C2", green.table("C2"))
        # C2 is not reachable yet: no loc states of C2 exist, nothing dirty
        assert dirty == []
        dirty = ks.update_switch("A1", green.table("A1"))
        assert any(s.node == "A1" for s in dirty)
        # new states along the green path were created
        assert any(s.node == "C2" for s in dirty)

    def test_update_preserves_old_states(self, topo):
        ks = build(topo, RED)
        before = set(ks.states())
        green = Configuration.from_paths(topo, {TC: GREEN})
        ks.update_switch("A1", green.table("A1"))
        # Q only grows (states are never removed)
        assert before.issubset(set(ks.states()))

    def test_update_and_revert_roundtrip(self, topo):
        red_config = Configuration.from_paths(topo, {TC: RED})
        green = Configuration.from_paths(topo, {TC: GREEN})
        ks = build(topo, RED)
        succ_before = {s: ks.succ(s) for s in ks.states()}
        ks.update_switch("A1", green.table("A1"))
        ks.update_switch("A1", red_config.table("A1"))
        for state, succ in succ_before.items():
            assert ks.succ(state) == succ

    def test_update_creating_loop_raises(self):
        topo = Topology()
        topo.add_switches(["A", "B"])
        topo.add_host("H")
        topo.add_host("H2")
        topo.add_link("H", "A")
        topo.add_link("A", "B")
        topo.add_link("B", "H2")
        path = ["H", "A", "B", "H2"]
        config = Configuration.from_paths(topo, {TC: path})
        ks = KripkeStructure(topo, config, {TC: ["H"]})
        # repoint B back at A: loop
        bad = Rule(99, Pattern(None, TC.fields), (Forward(topo.port_to("B", "A")),))
        with pytest.raises(ForwardingLoopError):
            ks.update_switch("B", Table([bad]))
        # revert restores acyclicity
        ks.update_switch("B", config.table("B"))
        assert ks.rank(ks.initial_states[0]) >= 1

    def test_rule_granularity_update_only_touches_class(self, topo):
        other = TrafficClass.make("f31", src="H3", dst="H1")
        init = Configuration.from_paths(
            topo,
            {TC: RED, other: ["H3", "T3", "A3", "C1", "A1", "T1", "H1"]},
        )
        final13 = Configuration.from_paths(topo, {TC: GREEN})
        ks = KripkeStructure(topo, init, {TC: ["H1"], other: ["H3"]})
        dirty = ks.update_class_rules("A1", TC, final13.table("A1"))
        assert all(s.tc == TC for s in dirty if s.kind == "loc" and s.node == "A1")
        # the other class still flows through A1 untouched
        assert "A1" in ks.reachable_switches(other)

    def test_reachable_switches(self, topo):
        ks = build(topo, RED)
        assert ks.reachable_switches(TC) == frozenset({"T1", "A1", "C1", "A3", "T3"})


class TestMaximalPaths:
    def test_single_path(self, topo):
        ks = build(topo, RED)
        paths = ks.maximal_paths()
        assert len(paths) == 1
        nodes = [s.node for s in paths[0]]
        assert nodes == ["T1", "A1", "C1", "A3", "T3", "H3"]


class TestRuleCoversClass:
    def test_exact_match(self):
        rule = Rule(10, Pattern(None, TC.fields), (Forward(1),))
        assert rule_covers_class(rule, TC)

    def test_wildcard_covers_all(self):
        rule = Rule(10, Pattern.make(), (Forward(1),))
        assert rule_covers_class(rule, TC)

    def test_conflicting_field_excluded(self):
        rule = Rule(10, Pattern.make(dst="H4"), (Forward(1),))
        assert not rule_covers_class(rule, TC)
