"""Tests for packets and traffic classes."""


from repro.net.fields import Packet, TrafficClass, packet_for_class


class TestPacket:
    def test_make_and_get(self):
        pkt = Packet.make(src="H1", dst="H3")
        assert pkt.get("src") == "H1"
        assert pkt.get("dst") == "H3"
        assert pkt.get("missing") is None

    def test_fields_sorted_for_identity(self):
        a = Packet.make(src="H1", dst="H3")
        b = Packet.make(dst="H3", src="H1")
        assert a == b
        assert hash(a) == hash(b)

    def test_with_field_is_functional(self):
        pkt = Packet.make(src="H1", dst="H3")
        other = pkt.with_field("dst", "H4")
        assert pkt.get("dst") == "H3"
        assert other.get("dst") == "H4"
        assert other.get("src") == "H1"

    def test_with_field_adds_new_field(self):
        pkt = Packet.make(src="H1")
        stamped = pkt.with_field("ver", "2")
        assert stamped.get("ver") == "2"

    def test_epoch_annotation(self):
        pkt = Packet.make(epoch=3, src="H1")
        assert pkt.epoch == 3
        assert pkt.with_epoch(5).epoch == 5
        # epoch does not affect header identity
        assert pkt.header_key() == pkt.with_epoch(5).header_key()

    def test_field_map_and_iter(self):
        pkt = Packet.make(src="H1", dst="H3")
        assert pkt.field_map() == {"src": "H1", "dst": "H3"}
        assert dict(pkt) == {"src": "H1", "dst": "H3"}

    def test_str(self):
        assert "src=H1" in str(Packet.make(src="H1"))


class TestTrafficClass:
    def test_make_and_get(self):
        tc = TrafficClass.make("f", src="H1", dst="H3")
        assert tc.get("src") == "H1"
        assert tc.get("nope") is None
        assert tc.name == "f"

    def test_matches_packet(self):
        tc = TrafficClass.make("f", dst="H3")
        assert tc.matches_packet(Packet.make(src="H1", dst="H3"))
        assert not tc.matches_packet(Packet.make(src="H1", dst="H4"))

    def test_packet_for_class(self):
        tc = TrafficClass.make("f", src="H1", dst="H3")
        pkt = packet_for_class(tc, epoch=2)
        assert tc.matches_packet(pkt)
        assert pkt.epoch == 2

    def test_equality_and_hash(self):
        a = TrafficClass.make("f", src="H1")
        b = TrafficClass.make("f", src="H1")
        c = TrafficClass.make("g", src="H1")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_str_mentions_fields(self):
        assert "src=H1" in str(TrafficClass.make("f", src="H1"))
