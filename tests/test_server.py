"""Client↔server integration tests: the ``repro-api/1`` HTTP front-end
(repro.service.server) driven through the thin client
(repro.service.client), checked against the in-process scheduler."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import API_VERSION
from repro.ltl.parser import parse
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.net.serialize import Problem, plan_to_dict
from repro.service import (
    JobStatus,
    ReproClient,
    ReproServer,
    SynthesisOptions,
    SynthesisService,
)
from repro.topo import mini_datacenter

TC = TrafficClass.make("h1_to_h3", src="H1", dst="H3")
SPEC = "dst=H3 => F at(H3)"


def fig1_problem() -> Problem:
    topo = mini_datacenter()
    red = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
    green = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
    return Problem(
        topology=topo,
        ingresses={TC: ["H1"]},
        init=Configuration.from_paths(topo, {TC: red}),
        final=Configuration.from_paths(topo, {TC: green}),
        spec=parse(SPEC),
        spec_text=SPEC,
    )


BLOCKER_TC = TrafficClass.make("blocker", src="H1", dst="H3")


def blocker_problem() -> Problem:
    """Same shape as fig1, but its class name marks it for the gate."""
    topo = mini_datacenter()
    red = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
    green = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
    return Problem(
        topology=topo,
        ingresses={BLOCKER_TC: ["H1"]},
        init=Configuration.from_paths(topo, {BLOCKER_TC: red}),
        final=Configuration.from_paths(topo, {BLOCKER_TC: green}),
        spec=parse(SPEC),
        spec_text=SPEC,
    )


def normalized_plan(plan) -> dict:
    """plan_to_dict with run-specific timing stats zeroed (search counters
    stay — those must match between remote and in-process runs)."""
    data = plan_to_dict(plan)
    for key in list(data["stats"]):
        if key.endswith("_seconds"):
            data["stats"][key] = 0.0
    return data


def smoke_subset(count=4):
    from repro.scenarios import generate_corpus

    records = [
        record
        for record in generate_corpus("smoke", quick=True)
        if record.expected == "feasible"
    ]
    return records[:count]


@pytest.fixture()
def server():
    with ReproServer(port=0, workers=0) as srv:
        yield srv


@pytest.fixture()
def gated_server(monkeypatch):
    """A serial server whose scheduler blocks on :func:`blocker_problem`
    executions until the gate is set — the deterministic way to keep later
    submissions queued (every real scenario solves in milliseconds)."""
    import repro.service.engine as engine_module

    gate = threading.Event()
    original = engine_module._execute_payload

    def gated(problem_data, options_data, backend, **kwargs):
        classes = problem_data.get("classes", [])
        if any(entry.get("name") == "blocker" for entry in classes):
            gate.wait(timeout=60)
        return original(problem_data, options_data, backend, **kwargs)

    monkeypatch.setattr(engine_module, "_execute_payload", gated)
    with ReproServer(port=0, workers=0) as srv:
        try:
            yield srv, gate
        finally:
            gate.set()  # never leave the scheduler thread blocked


def wait_for_status(client, job_id, status, attempts=200):
    import time

    for _ in range(attempts):
        if client.poll().get(job_id) is status:
            return True
        time.sleep(0.01)
    return False


class TestRoundTrip:
    def test_plans_identical_to_in_process_service(self, server):
        """Acceptance: a job via ReproClient against `repro serve` returns
        a plan identical (same plan_to_dict) to the in-process result."""
        records = smoke_subset()
        assert records, "smoke corpus has no feasible scenarios?"
        local = SynthesisService(workers=0)
        for record in records:
            local.submit(
                record.problem,
                job_id=record.scenario_id,
                options=SynthesisOptions(granularity=record.granularity),
            )
        local_results = {res.job_id: res for res in local.stream()}

        client = ReproClient(server.url)
        for record in records:
            client.submit(
                record.problem,
                job_id=record.scenario_id,
                options=SynthesisOptions(granularity=record.granularity),
            )
        remote_results = {res.job_id: res for res in client.stream()}

        assert set(remote_results) == set(local_results)
        for job_id, local_res in local_results.items():
            remote_res = remote_results[job_id]
            assert remote_res.status is JobStatus.DONE
            assert remote_res.fingerprint == local_res.fingerprint
            assert normalized_plan(remote_res.plan) == normalized_plan(
                local_res.plan
            )

    def test_second_client_is_answered_from_warm_cache(self, server):
        """Acceptance: a repeat submission from a second client is a
        plan-cache hit (cached=true) with the identical plan."""
        problem = fig1_problem()
        first = ReproClient(server.url)
        cold = first.result(first.submit(problem).job_id, timeout=60)
        assert cold.status is JobStatus.DONE and not cold.cached

        second = ReproClient(server.url)
        warm = second.result(second.submit(problem).job_id, timeout=60)
        assert warm.status is JobStatus.DONE
        assert warm.cached
        assert plan_to_dict(warm.plan) == plan_to_dict(cold.plan)

    def test_submit_many_single_post(self, server):
        client = ReproClient(server.url)
        views = client.submit_many([fig1_problem(), fig1_problem()])
        assert len(views) == 2
        results = client.run()
        assert [r.status for r in results] == [JobStatus.DONE] * 2
        # identical problems: one execution, the sibling coalesced or cached
        real = [
            r for r in results if not r.cached and "coalesced" not in r.message
        ]
        assert len(real) == 1


class TestConcurrency:
    def test_two_threads_coalesce_on_one_fingerprint(self, gated_server):
        """Two clients submitting the same problem while the scheduler is
        busy coalesce onto a single execution."""
        server, gate = gated_server
        blocker = ReproClient(server.url)
        blocker.submit(blocker_problem(), job_id="blocker")
        assert wait_for_status(blocker, "blocker", JobStatus.RUNNING)

        results = {}

        def submit_and_wait(name):
            client = ReproClient(server.url)
            view = client.submit(fig1_problem(), job_id=name)
            results[name] = client.result(view.job_id, timeout=120)

        threads = [
            threading.Thread(target=submit_and_wait, args=(f"twin-{i}",))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        # both twins are queued behind the gated blocker before it opens
        poll = ReproClient(server.url)
        assert wait_for_status(poll, "twin-0", JobStatus.QUEUED)
        assert wait_for_status(poll, "twin-1", JobStatus.QUEUED)
        gate.set()
        for thread in threads:
            thread.join(timeout=120)
        assert set(results) == {"twin-0", "twin-1"}
        for res in results.values():
            assert res.status is JobStatus.DONE
        assert (
            plan_to_dict(results["twin-0"].plan)
            == plan_to_dict(results["twin-1"].plan)
        )
        # exactly one real synthesis: the twins share one fingerprint group
        real = [
            r
            for r in results.values()
            if not r.cached and "coalesced" not in r.message
        ]
        assert len(real) == 1
        assert sum("coalesced" in r.message for r in results.values()) == 1
        blocker.result("blocker", timeout=120)  # settle before teardown

    def test_cancel_queued_job(self, gated_server):
        server, gate = gated_server
        client = ReproClient(server.url)
        client.submit(blocker_problem(), job_id="busy")
        assert wait_for_status(client, "busy", JobStatus.RUNNING)
        client.submit(fig1_problem(), job_id="victim")
        assert client.cancel("victim") is True
        result = client.result("victim", timeout=60)
        assert result.status is JobStatus.CANCELLED
        gate.set()
        # the busy job is untouched and still settles
        busy = client.result("busy", timeout=120)
        assert busy.status is JobStatus.DONE
        # cancelling a settled job is a no-op answer, not an error
        assert client.cancel("victim") is False


class TestProtocolErrors:
    def post(self, server, body: bytes, path="/v1/jobs"):
        request = urllib.request.Request(
            server.url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return urllib.request.urlopen(request)

    def test_malformed_request_is_400_parse_envelope(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server, b'{"problem": {"spec": "F ("}}')
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read())
        assert envelope["api"] == API_VERSION
        assert envelope["error"]["code"] == "parse"
        assert envelope["error"]["exit_code"] == 4

    def test_bad_json_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server, b"{not json")
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["code"] == "parse"

    def test_wrong_api_version_is_400(self, server):
        from repro.api import SynthesisRequest

        data = SynthesisRequest(problem=fig1_problem()).to_dict()
        data["api"] = "repro-api/99"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server, json.dumps(data).encode())
        assert excinfo.value.code == 400

    def test_unknown_job_is_404_envelope(self, server):
        client = ReproClient(server.url)
        with pytest.raises(KeyError):
            client.try_result("never-submitted")

    def test_server_default_options_apply_to_bare_requests(self):
        # repro serve --timeout 0 must reach clients that send no options
        with ReproServer(
            port=0, workers=0, default_options=SynthesisOptions(timeout=0.0)
        ) as srv:
            client = ReproClient(srv.url)  # no default_options: sends none
            view = client.submit(blocker_problem())
            result = client.result(view.job_id, timeout=60)
            assert result.status is JobStatus.TIMEOUT

    def test_sparse_options_merge_onto_server_defaults(self):
        # picking a checker must not silently drop the server's timeout
        with ReproServer(
            port=0, workers=0, default_options=SynthesisOptions(timeout=0.0)
        ) as srv:
            client = ReproClient(srv.url)
            view = client.submit(
                blocker_problem(), options_data={"checker": "batch"}
            )
            result = client.result(view.job_id, timeout=60)
            assert result.status is JobStatus.TIMEOUT

    def test_timeout_kwarg_rides_sparse(self):
        # client.submit(problem, timeout=...) must not clobber the
        # server's other defaults with client-side SynthesisOptions()
        with ReproServer(
            port=0, workers=0,
            default_options=SynthesisOptions(checker="batch"),
        ) as srv:
            client = ReproClient(srv.url)
            view = client.submit(fig1_problem(), timeout=60.0)
            result = client.result(view.job_id, timeout=60)
            assert result.status is JobStatus.DONE
            assert result.backend == "batch"  # server default survived

    def test_bind_conflict_raises_clean_error_and_leaks_nothing(self, server):
        import threading

        from repro.errors import ReproError

        def scheduler_threads():
            return sum(
                1
                for thread in threading.enumerate()
                if thread.name == "repro-scheduler" and thread.is_alive()
            )

        before = scheduler_threads()
        host, port = server.address
        with pytest.raises(ReproError, match="cannot bind"):
            ReproServer(host=host, port=port, workers=0)
        # the aborted server's owned scheduler thread must not linger
        assert scheduler_threads() == before

    def test_duplicate_open_id_is_409_with_accepted_ids(self, gated_server):
        server, gate = gated_server
        client = ReproClient(server.url)
        client.submit(blocker_problem(), job_id="dup")
        from repro.net.serialize import problem_to_dict

        request = {"problem": problem_to_dict(fig1_problem()), "id": "dup"}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server, json.dumps({"jobs": [
                dict(request, id="fresh"), request,
            ]}).encode())
        assert excinfo.value.code == 409
        envelope = json.loads(excinfo.value.read())
        assert "duplicate" in envelope["error"]["message"]
        assert "fresh" in envelope["error"]["message"]
        gate.set()
        # the accepted entry is live and settles
        assert client.result("fresh", timeout=60).status is JobStatus.DONE

    def test_keepalive_survives_error_with_unread_body(self, server):
        # an error response must drain the request body, or the next
        # request on the same keep-alive connection reads garbage
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/nope", body=b'{"some": "body"}',
                headers={"Content-Type": "application/json"},
            )
            first = conn.getresponse()
            assert first.status == 404
            first.read()
            # same socket: a valid request must still parse cleanly
            conn.request("GET", "/v1/healthz")
            second = conn.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["ok"] is True
        finally:
            conn.close()

    @pytest.mark.parametrize(
        "value", ["soon", "-1", "-0.5", "nan", "inf", "-inf", "1e300", "1e7"]
    )
    def test_bad_wait_is_400_parse_envelope(self, server, value):
        """Regression: negative, non-numeric, NaN/inf, and absurdly large
        wait= used to clamp silently (NaN clamped to the *maximum* wait)."""
        client = ReproClient(server.url)
        view = client.submit(fig1_problem())
        client.result(view.job_id, timeout=60)
        for path in ("/v1/jobs", f"/v1/jobs/{view.job_id}"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}{path}?wait={value}")
            assert excinfo.value.code == 400
            envelope = json.loads(excinfo.value.read())
            assert envelope["error"]["code"] == "parse"
            assert "wait" in envelope["error"]["message"]

    @pytest.mark.parametrize("value", ["0", "0.05", "100000"])
    def test_valid_wait_values_accepted(self, server, value):
        # merely-large finite values clamp to MAX_WAIT_SECONDS, they are
        # not an error (looping clients rely on the clamp)
        client = ReproClient(server.url)
        view = client.submit(fig1_problem())
        client.result(view.job_id, timeout=60)
        reply = urllib.request.urlopen(
            f"{server.url}/v1/jobs/{view.job_id}?wait={value}"
        )
        assert reply.status == 200

    def test_unknown_endpoint_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/v2/jobs")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"]["code"] == "not_found"

    def test_healthz_metrics_cache_stats(self, server):
        client = ReproClient(server.url)
        health = client.healthz()
        assert health["ok"] is True and health["api"] == API_VERSION
        metrics = client.metrics_dict()
        for gauge in ("queue_depth", "in_flight", "memo_scopes", "uptime_seconds"):
            assert gauge in metrics["gauges"]
        stats = client.cache_stats()
        assert "entries" in stats and "hits" in stats


class TestClientRetry:
    """Idempotent GETs ride out transient transport failures; POSTs and
    HTTP-level errors never retry."""

    def flaky_urlopen(self, monkeypatch, failures):
        """Patch urlopen to raise URLError ``failures`` times, then pass
        through; returns the call counter."""
        real = urllib.request.urlopen
        calls = {"n": 0}

        def flaky(request, timeout=None):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise urllib.error.URLError(ConnectionResetError("flaky"))
            return real(request, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", flaky)
        return calls

    def test_get_retries_transient_transport_errors(self, server, monkeypatch):
        client = ReproClient(server.url, max_retries=2, retry_backoff=0.0)
        calls = self.flaky_urlopen(monkeypatch, failures=2)
        assert client.healthz()["ok"] is True
        assert calls["n"] == 3

    def test_retries_exhausted_surface_the_transport_error(
        self, server, monkeypatch
    ):
        from repro.errors import ReproError

        client = ReproClient(server.url, max_retries=2, retry_backoff=0.0)
        calls = self.flaky_urlopen(monkeypatch, failures=10)
        with pytest.raises(ReproError, match="unreachable"):
            client.healthz()
        assert calls["n"] == 3  # first attempt + max_retries

    def test_post_never_retries(self, server, monkeypatch):
        from repro.errors import ReproError

        client = ReproClient(server.url, max_retries=5, retry_backoff=0.0)
        calls = self.flaky_urlopen(monkeypatch, failures=10)
        with pytest.raises(ReproError, match="unreachable"):
            client.submit(fig1_problem())
        assert calls["n"] == 1  # a resubmitted job would be a duplicate

    def test_http_error_responses_are_not_retried(self, server, monkeypatch):
        client = ReproClient(server.url, max_retries=5, retry_backoff=0.0)
        calls = self.flaky_urlopen(monkeypatch, failures=0)
        with pytest.raises(KeyError):
            client.try_result("never-submitted")  # 404: the server spoke
        assert calls["n"] == 1

    def test_retries_disabled_by_default_zero(self, server, monkeypatch):
        from repro.errors import ReproError

        client = ReproClient(server.url, max_retries=0)
        calls = self.flaky_urlopen(monkeypatch, failures=1)
        with pytest.raises(ReproError, match="unreachable"):
            client.healthz()
        assert calls["n"] == 1


class TestCliFrontEnds:
    """`repro submit` and `repro batch --server` must keep the CLI's exit
    codes and output shapes — thin clients, not different tools."""

    def write_problem(self, tmp_path, problem) -> str:
        from repro.net.serialize import save_problem

        path = tmp_path / "p.json"
        save_problem(problem, str(path))
        return str(path)

    def test_submit_done_exit_zero(self, server, tmp_path, capsys):
        from repro.cli import main

        path = self.write_problem(tmp_path, fig1_problem())
        assert main(["submit", path, "--server", server.url]) == 0
        assert "UpdatePlan" in capsys.readouterr().out

    def test_submit_json_document(self, server, tmp_path, capsys):
        from repro.cli import main

        path = self.write_problem(tmp_path, fig1_problem())
        assert main(["submit", path, "--server", server.url, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["status"] == "done"
        assert document["plan"]["commands"]

    def test_submit_infeasible_exit_two(self, server, tmp_path, capsys):
        from repro.cli import main
        from repro.topo import double_diamond

        scenario = double_diamond(8, seed=1)
        problem = Problem(
            topology=scenario.topology,
            ingresses={tc: list(h) for tc, h in scenario.ingresses.items()},
            init=scenario.init,
            final=scenario.final,
            spec=scenario.spec,
            spec_text=str(scenario.spec),
        )
        path = self.write_problem(tmp_path, problem)
        assert main(["submit", path, "--server", server.url]) == 2
        assert json.loads(capsys.readouterr().out)["status"] == "infeasible"

    def test_submit_timeout_exit_three(self, server, tmp_path, capsys):
        from repro.cli import main

        path = self.write_problem(tmp_path, fig1_problem())
        code = main(
            ["submit", path, "--server", server.url, "--timeout", "0.0"]
        )
        assert code == 3

    def test_submit_parse_error_exit_four(self, server, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text('{"spec": "F ("}')
        assert main(["submit", str(path), "--server", server.url]) == 4

    def test_submit_unreachable_server_exit_one(self, tmp_path, capsys):
        from repro.cli import main

        path = self.write_problem(tmp_path, fig1_problem())
        code = main(
            ["submit", path, "--server", "http://127.0.0.1:1/"]
        )
        assert code == 1

    def test_submit_no_wait_prints_view(self, server, tmp_path, capsys):
        from repro.cli import main

        path = self.write_problem(tmp_path, fig1_problem())
        assert main(
            ["submit", path, "--server", server.url, "--no-wait"]
        ) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["api"] == API_VERSION
        assert view["status"] in ("queued", "running", "done")

    def test_batch_server_matches_in_process(self, server, tmp_path, capsys):
        from repro.cli import main
        from repro.net.serialize import problem_to_dict

        docs = []
        for record in smoke_subset(3):
            doc = problem_to_dict(record.problem)
            doc["id"] = record.scenario_id
            doc["granularity"] = record.granularity
            docs.append(doc)
        path = tmp_path / "batch.jsonl"
        path.write_text("".join(json.dumps(doc) + "\n" for doc in docs))

        assert main(["batch", str(path), "--serial"]) == 0
        local = {
            json.loads(line)["id"]: json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        }
        assert (
            main(["batch", str(path), "--server", server.url]) == 0
        )
        remote = {
            json.loads(line)["id"]: json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        }
        assert set(remote) == set(local)
        for job_id, local_record in local.items():
            remote_record = remote[job_id]
            assert remote_record["status"] == local_record["status"]
            assert remote_record["fingerprint"] == local_record["fingerprint"]
            assert (
                remote_record["plan"]["commands"]
                == local_record["plan"]["commands"]
            )
