"""Tests for patterns, rules, and the [[tbl]] table semantics."""


from repro.net.fields import Packet
from repro.net.rules import EMPTY_TABLE, Forward, Pattern, Rule, SetField, Table


def fwd_rule(priority, port, **fields):
    return Rule(priority, Pattern.make(**fields), (Forward(port),))


class TestPattern:
    def test_wildcard_matches_everything(self):
        pat = Pattern.make()
        assert pat.is_wildcard()
        assert pat.matches(Packet.make(src="H1"), 7)

    def test_field_constraint(self):
        pat = Pattern.make(dst="H3")
        assert pat.matches(Packet.make(dst="H3"), 1)
        assert not pat.matches(Packet.make(dst="H4"), 1)

    def test_in_port_constraint(self):
        pat = Pattern.make(in_port=2, dst="H3")
        assert pat.matches(Packet.make(dst="H3"), 2)
        assert not pat.matches(Packet.make(dst="H3"), 3)

    def test_str_forms(self):
        assert str(Pattern.make()) == "{*}"
        assert "pt=1" in str(Pattern.make(in_port=1))


class TestRule:
    def test_forward_emits_packet(self):
        rule = fwd_rule(10, 4, dst="H3")
        out = rule.apply(Packet.make(dst="H3"), 1)
        assert out == [(Packet.make(dst="H3"), 4)]

    def test_setfield_then_forward(self):
        rule = Rule(10, Pattern.make(), (SetField("ver", "2"), Forward(1)))
        out = rule.apply(Packet.make(dst="H3"), 1)
        assert len(out) == 1
        assert out[0][0].get("ver") == "2"

    def test_multicast_action_list(self):
        rule = Rule(10, Pattern.make(), (Forward(1), SetField("f", "x"), Forward(2)))
        out = rule.apply(Packet.make(), 0)
        assert len(out) == 2
        assert out[0][0].get("f") is None  # first copy unmodified
        assert out[1][0].get("f") == "x"  # rewrite applies to later copies

    def test_drop_rule_has_no_outputs(self):
        rule = Rule(10, Pattern.make(), ())
        assert rule.apply(Packet.make(), 0) == []
        assert "drop" in str(rule)


class TestTable:
    def test_empty_table_drops(self):
        assert EMPTY_TABLE.process(Packet.make(dst="H3"), 1) == []

    def test_highest_priority_wins(self):
        low = fwd_rule(10, 1, dst="H3")
        high = fwd_rule(20, 2, dst="H3")
        table = Table([low, high])
        out = table.process(Packet.make(dst="H3"), 0)
        assert out[0][1] == 2

    def test_priority_order_is_input_order_independent(self):
        low = fwd_rule(10, 1)
        high = fwd_rule(20, 2)
        assert Table([low, high]) == Table([high, low])
        assert hash(Table([low, high])) == hash(Table([high, low]))

    def test_no_match_drops(self):
        table = Table([fwd_rule(10, 1, dst="H3")])
        assert table.process(Packet.make(dst="H4"), 0) == []

    def test_lookup_returns_matching_rule(self):
        r = fwd_rule(10, 1, dst="H3")
        table = Table([r])
        assert table.lookup(Packet.make(dst="H3"), 0) is r
        assert table.lookup(Packet.make(dst="H4"), 0) is None

    def test_with_and_without_rule(self):
        r1 = fwd_rule(10, 1, dst="H3")
        r2 = fwd_rule(20, 2, dst="H4")
        table = Table([r1]).with_rule(r2)
        assert len(table) == 2
        assert len(table.without_rule(r1)) == 1

    def test_restrict(self):
        r1 = fwd_rule(10, 1, dst="H3")
        r2 = fwd_rule(20, 2, dst="H4")
        table = Table([r1, r2]).restrict(lambda r: r.priority > 15)
        assert list(table) == [r2]

    def test_merge(self):
        t1 = Table([fwd_rule(10, 1)])
        t2 = Table([fwd_rule(20, 2)])
        assert len(t1.merge(t2)) == 2

    def test_equal_priority_deterministic(self):
        r1 = fwd_rule(10, 1, dst="H3")
        r2 = fwd_rule(10, 2, dst="H3")
        table = Table([r1, r2])
        # semantics is free to pick either; ours is deterministic
        first = table.process(Packet.make(dst="H3"), 0)
        again = table.process(Packet.make(dst="H3"), 0)
        assert first == again
