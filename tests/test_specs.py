"""Tests for the specification library against the checker backends."""

import pytest

from repro.errors import UpdateInfeasibleError
from repro.kripke.structure import KripkeStructure
from repro.ltl import specs
from repro.mc import make_checker
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.synthesis import order_update
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
BLUE = ["H1", "T1", "A2", "C1", "A4", "T3", "H3"]


def verdict(path, spec):
    topo = mini_datacenter()
    config = Configuration.from_paths(topo, {TC: path})
    ks = KripkeStructure(topo, config, {TC: ["H1"]})
    return make_checker("incremental", ks, spec).full_check().ok


class TestGuards:
    def test_guard_makes_other_classes_vacuous(self):
        other = TrafficClass.make("f24", src="H2", dst="H4")
        spec = specs.reachability(other, "H4")
        # the f13 trace satisfies f24's spec vacuously
        assert verdict(RED, spec)

    def test_unguarded_blackhole_freedom_applies_to_all(self):
        spec = specs.blackhole_freedom()  # no class guard
        assert verdict(RED, spec)


class TestOnPathAndConsistency:
    def test_on_path_holds_for_exact_path(self):
        spec = specs.on_path(TC, ["T1", "A1", "C1", "A3", "T3"], "H3")
        assert verdict(RED, spec)

    def test_on_path_fails_for_other_path(self):
        spec = specs.on_path(TC, ["T1", "A1", "C2", "A3", "T3"], "H3")
        assert not verdict(RED, spec)

    def test_consistency_accepts_both_endpoints(self):
        spec = specs.path_consistency(
            TC, RED[1:-1], BLUE[1:-1], "H3"
        )
        assert verdict(RED, spec)
        assert verdict(BLUE, spec)

    def test_consistency_rejects_mixed_path(self):
        mixed = ["H1", "T1", "A2", "C1", "A3", "T3", "H3"]
        spec = specs.path_consistency(TC, RED[1:-1], BLUE[1:-1], "H3")
        assert not verdict(mixed, spec)

    def test_red_to_blue_consistency_is_unsynthesizable(self):
        """The paper's §2 argument, via the library spec: no switch order
        moves red to blue while every packet stays on one of the two paths."""
        topo = mini_datacenter()
        init = Configuration.from_paths(topo, {TC: RED})
        final = Configuration.from_paths(topo, {TC: BLUE})
        spec = specs.path_consistency(TC, RED[1:-1], BLUE[1:-1], "H3")
        with pytest.raises(UpdateInfeasibleError):
            order_update(topo, init, final, {TC: ["H1"]}, spec)

    def test_red_to_green_is_consistently_orderable(self):
        """red -> green *does* admit a consistent ordering (C2 first)."""
        topo = mini_datacenter()
        init = Configuration.from_paths(topo, {TC: RED})
        final = Configuration.from_paths(topo, {TC: GREEN})
        spec = specs.path_consistency(TC, RED[1:-1], GREEN[1:-1], "H3")
        plan = order_update(topo, init, final, {TC: ["H1"]}, spec)
        order = [c.switch for c in plan.updates()]
        assert order.index("C2") < order.index("A1")


class TestCombinators:
    def test_all_of_conjunction(self):
        spec = specs.all_of(
            [specs.reachability(TC, "H3"), specs.waypoint(TC, "C1", "H3")]
        )
        assert verdict(RED, spec)
        assert not verdict(GREEN, spec)  # green avoids C1

    def test_any_of_disjunction(self):
        spec = specs.any_of(
            [specs.waypoint(TC, "C1", "H3"), specs.waypoint(TC, "C2", "H3")]
        )
        assert verdict(RED, spec)
        assert verdict(GREEN, spec)

    def test_waypoint_choice(self):
        spec = specs.waypoint_choice(TC, ["A1", "A2"], "H3")
        assert verdict(RED, spec)
        assert verdict(BLUE, spec)
