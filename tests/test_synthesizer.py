"""End-to-end tests of the UpdateSynthesizer façade, including *dynamic*
soundness: executing the synthesized plan on the operational machine while
traffic flows never produces a spec-violating packet trace (Theorem 1)."""

import pytest

from repro import Configuration, TrafficClass, UpdateSynthesizer, specs
from repro.errors import UpdateInfeasibleError
from repro.net.fields import packet_for_class
from repro.net.machine import NetworkMachine
from repro.net.trace import is_loop_free, trace_satisfies
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
BLUE = ["H1", "T1", "A2", "C1", "A4", "T3", "H3"]


def fig1(final_path=GREEN):
    topo = mini_datacenter()
    init = Configuration.from_paths(topo, {TC: RED})
    final = Configuration.from_paths(topo, {TC: final_path})
    return topo, init, final


class TestFacade:
    def test_basic_synthesis(self):
        topo, init, final = fig1()
        synth = UpdateSynthesizer(topo)
        plan = synth.synthesize(init, final, specs.reachability(TC, "H3"), {TC: ["H1"]})
        assert plan.num_updates() == 3
        assert plan.stats.waits_after_removal <= plan.stats.waits_before_removal

    def test_remove_waits_disabled(self):
        topo, init, final = fig1()
        synth = UpdateSynthesizer(topo, remove_waits=False)
        plan = synth.synthesize(init, final, specs.reachability(TC, "H3"), {TC: ["H1"]})
        assert plan.num_waits() == plan.num_updates() - 1

    def test_all_checker_backends(self):
        for backend in ("incremental", "batch", "automaton", "netplumber"):
            topo, init, final = fig1()
            synth = UpdateSynthesizer(topo, checker=backend)
            plan = synth.synthesize(
                init, final, specs.reachability(TC, "H3"), {TC: ["H1"]}
            )
            assert plan.num_updates() == 3

    def test_infeasible_propagates(self):
        from repro.topo import double_diamond

        sc = double_diamond(10)
        synth = UpdateSynthesizer(sc.topology)
        with pytest.raises(UpdateInfeasibleError):
            synth.synthesize(sc.init, sc.final, sc.spec, sc.ingresses)


class TestDynamicSoundness:
    """Replay synthesized plans through the operational machine with traffic
    injected between every command; every completed packet trace must satisfy
    the specification (Theorem 1, checked dynamically)."""

    def replay(self, topo, init, spec, plan, seed=0, per_step_packets=2):
        machine = NetworkMachine(topo, init, seed=seed)
        machine.set_commands(list(plan.commands))

        def interleave():
            for _ in range(per_step_packets):
                machine.inject("H1", packet_for_class(TC), TC)

        machine.run_commands_carefully(interleave)
        traces = machine.completed_traces()
        assert traces, "no traffic completed"
        for trace in traces.values():
            assert is_loop_free(trace)
            assert trace_satisfies(spec, trace)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_red_to_green_replay(self, seed):
        topo, init, final = fig1()
        spec = specs.reachability(TC, "H3")
        plan = UpdateSynthesizer(topo).synthesize(init, final, spec, {TC: ["H1"]})
        self.replay(topo, init, spec, plan, seed=seed)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_red_to_blue_waypoint_replay(self, seed):
        topo, init, final = fig1(BLUE)
        spec = specs.waypoint_choice(TC, ["A2", "A3"], "H3")
        plan = UpdateSynthesizer(topo).synthesize(init, final, spec, {TC: ["H1"]})
        self.replay(topo, init, spec, plan, seed=seed)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_careful_plan_replay_without_wait_removal(self, seed):
        topo, init, final = fig1(BLUE)
        spec = specs.waypoint_choice(TC, ["A2", "A3"], "H3")
        plan = UpdateSynthesizer(topo, remove_waits=False).synthesize(
            init, final, spec, {TC: ["H1"]}
        )
        self.replay(topo, init, spec, plan, seed=seed)

    def test_naive_order_would_violate(self):
        """Sanity check that the dynamic test can actually catch violations:
        the bad order (A1 before C2) drops packets."""
        from repro.net.commands import SwitchUpdate, Wait

        topo, init, final = fig1()
        spec = specs.reachability(TC, "H3")
        bad_commands = [
            SwitchUpdate("A1", final.table("A1")),
            Wait(),
            SwitchUpdate("C2", final.table("C2")),
        ]
        machine = NetworkMachine(topo, init, seed=3)
        machine.set_commands(bad_commands)

        def interleave():
            machine.inject("H1", packet_for_class(TC), TC)

        machine.run_commands_carefully(interleave)
        verdicts = [
            trace_satisfies(spec, t) for t in machine.completed_traces().values()
        ]
        assert not all(verdicts)
