"""Deeper cross-layer property tests.

These tie the incremental machinery to ground truth under *randomized*
workloads: arbitrary interleavings of switch- and rule-granularity updates
and reverts, serializer round-trips over generated objects, and structural
invariants of the topology generators.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.kripke.structure import KripkeStructure
from repro.ltl import specs
from repro.mc import BatchChecker, IncrementalChecker
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.net.serialize import (
    config_from_dict,
    config_to_dict,
    problem_from_dict,
    problem_to_dict,
    Problem,
)
from repro.net.rules import Forward, Pattern, Rule, Table
from repro.topo import fat_tree, mini_datacenter, small_world

TC = TrafficClass.make("f13", src="H1", dst="H3")
TC2 = TrafficClass.make("f14", src="H1", dst="H4")

PATHS_13 = [
    ["H1", "T1", "A1", "C1", "A3", "T3", "H3"],
    ["H1", "T1", "A1", "C2", "A3", "T3", "H3"],
    ["H1", "T1", "A2", "C1", "A4", "T3", "H3"],
    ["H1", "T1", "A2", "C2", "A4", "T3", "H3"],
]
PATHS_14 = [
    ["H1", "T1", "A1", "C1", "A4", "T4", "H4"],
    ["H1", "T1", "A2", "C2", "A3", "T4", "H4"],
]


@given(
    seed=st.integers(min_value=0, max_value=10000),
    steps=st.integers(min_value=5, max_value=25),
    rule_gran=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_incremental_equals_batch_under_random_mutation(seed, steps, rule_gran):
    """The paper's Corollary 1, stress-tested: after any sequence of
    switch/class updates (including reverts), the incremental labeling's
    verdict equals a from-scratch batch check."""
    rng = random.Random(seed)
    topo = mini_datacenter()
    base = Configuration.from_paths(
        topo, {TC: PATHS_13[0], TC2: PATHS_14[0]}
    )
    alternatives = [
        Configuration.from_paths(topo, {TC: p13, TC2: p14})
        for p13 in PATHS_13
        for p14 in PATHS_14
    ]
    spec = specs.all_of(
        [specs.reachability(TC, "H3"), specs.reachability(TC2, "H4")]
    )
    ks = KripkeStructure(topo, base, {TC: ["H1"], TC2: ["H1"]})
    inc = IncrementalChecker(ks, spec)
    inc.full_check()
    switches = sorted({sw for c in alternatives for sw in c.switches()})
    for _ in range(steps):
        target = rng.choice(alternatives)
        sw = rng.choice(switches)
        if rule_gran:
            tc = rng.choice([TC, TC2])
            dirty = ks.update_class_rules(sw, tc, target.table(sw))
        else:
            dirty = ks.update_switch(sw, target.table(sw))
        incremental = inc.apply_update(dirty)
        batch = BatchChecker(ks, spec).full_check()
        assert incremental.ok == batch.ok


class TestSerializerProperties:
    configs = st.lists(
        st.tuples(
            st.sampled_from(["T1", "A1", "C1", "C2", "A3", "T3"]),
            st.integers(min_value=1, max_value=3),  # out port
            st.integers(min_value=1, max_value=200),  # priority
            st.sampled_from(["H3", "H4", "H1"]),
        ),
        min_size=0,
        max_size=10,
    )

    @given(entries=configs)
    @settings(max_examples=100, deadline=None)
    def test_config_roundtrip_property(self, entries):
        tables = {}
        for sw, port, priority, dst in entries:
            rule = Rule(priority, Pattern.make(dst=dst), (Forward(port),))
            tables.setdefault(sw, []).append(rule)
        config = Configuration({sw: Table(rules) for sw, rules in tables.items()})
        # via JSON text to catch type regressions (ints vs strings)
        text = json.dumps(config_to_dict(config))
        assert config_from_dict(json.loads(text)) == config

    def test_problem_roundtrip_preserves_everything(self):
        from repro.ltl.parser import parse

        topo = mini_datacenter()
        problem = Problem(
            topology=topo,
            ingresses={TC: ["H1"], TC2: ["H1"]},
            init=Configuration.from_paths(topo, {TC: PATHS_13[0]}),
            final=Configuration.from_paths(topo, {TC: PATHS_13[1]}),
            spec=parse("dst=H3 => F at(H3)"),
            spec_text="dst=H3 => F at(H3)",
        )
        clone = problem_from_dict(
            json.loads(json.dumps(problem_to_dict(problem)))
        )
        assert clone.init == problem.init
        assert clone.final == problem.final
        assert clone.spec == problem.spec
        assert set(clone.ingresses) == set(problem.ingresses)


class TestTopologyInvariants:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_fattree_structure(self, k):
        topo = fat_tree(k)
        half = k // 2
        cores = [s for s in topo.switches if s.startswith("C")]
        aggs = [s for s in topo.switches if s.startswith("A")]
        edges = [s for s in topo.switches if s.startswith("E")]
        assert len(cores) == half * half
        assert len(aggs) == k * half
        assert len(edges) == k * half
        # every aggregation switch connects to exactly half cores + half edges
        for agg in aggs:
            neighbors = topo.neighbors(agg)
            assert sum(1 for n in neighbors if n.startswith("C")) == half
            assert sum(1 for n in neighbors if n.startswith("E")) == half
        # core stripe property: each core connects to every pod exactly once
        for core in cores:
            pods = {n.split("_")[0] for n in topo.neighbors(core)}
            assert len(pods) == k

    @given(
        n=st.integers(min_value=8, max_value=60),
        p=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_small_world_invariants(self, n, p, seed):
        topo = small_world(n, rewire_probability=p, seed=seed)
        assert len(topo.switches) == n
        # the distance-1 ring survives rewiring: two disjoint arcs exist
        for i in range(n):
            assert topo.are_adjacent(f"S{i}", f"S{(i + 1) % n}")
        # no duplicate links (Topology enforces it; count sanity)
        assert len(topo.links) >= n


class TestMachineEpochInvariants:
    def test_epochs_monotone_along_traces(self):
        """A packet's recorded trace spans a single epoch stamp: each packet
        is annotated once at ingress (the IN rule)."""
        from repro.net.commands import Incr
        from repro.net.fields import packet_for_class
        from repro.net.machine import NetworkMachine

        topo = mini_datacenter()
        config = Configuration.from_paths(topo, {TC: PATHS_13[0]})
        machine = NetworkMachine(topo, config, seed=9)
        machine.inject("H1", packet_for_class(TC), TC)
        machine.set_commands([Incr()])
        machine.step_controller()
        machine.inject("H1", packet_for_class(TC), TC)
        machine.drain()
        assert machine.epoch == 1
        assert all(o == "delivered" for o in machine.outcome.values())

    def test_flush_unblocks_exactly_when_drained(self):
        from repro.net.commands import Flush, Incr
        from repro.net.fields import packet_for_class
        from repro.net.machine import NetworkMachine

        topo = mini_datacenter()
        config = Configuration.from_paths(topo, {TC: PATHS_13[0]})
        machine = NetworkMachine(topo, config, seed=2)
        machine.inject("H1", packet_for_class(TC), TC)
        machine.set_commands([Incr(), Flush()])
        assert machine.step_controller()
        blocked_at_least_once = not machine.step_controller()
        machine.drain()
        assert machine.step_controller()
        assert blocked_at_least_once
