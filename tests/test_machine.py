"""Tests for the operational network machine (§3 semantics)."""

import pytest

from repro.errors import SimulationError
from repro.net.commands import Flush, Incr, SwitchUpdate, Wait
from repro.net.config import Configuration
from repro.net.fields import TrafficClass, packet_for_class
from repro.net.machine import NetworkMachine
from repro.net.trace import is_loop_free, trace_satisfies
from repro.ltl import specs
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]


def machine(path=RED, seed=0):
    topo = mini_datacenter()
    config = Configuration.from_paths(topo, {TC: path})
    return topo, NetworkMachine(topo, config, seed=seed)


class TestDataPlane:
    def test_delivery_along_path(self):
        _, m = machine()
        pid = m.inject("H1", packet_for_class(TC), TC)
        m.drain()
        assert m.outcome[pid] == "delivered"
        assert m.delivered_at[pid] == "H3"
        nodes = [v.node for v in m.traces[pid]]
        assert nodes == ["T1", "A1", "C1", "A3", "T3", "H3"]

    def test_drop_without_rules(self):
        topo = mini_datacenter()
        m = NetworkMachine(topo, Configuration.empty())
        pid = m.inject("H1", packet_for_class(TC), TC)
        m.drain()
        assert m.outcome[pid] == "dropped"
        assert m.traces[pid][-1].dropped

    def test_inject_at_non_host_rejected(self):
        _, m = machine()
        with pytest.raises(SimulationError):
            m.inject("T1", packet_for_class(TC), TC)

    def test_many_packets_interleaved(self):
        _, m = machine(seed=3)
        pids = [m.inject("H1", packet_for_class(TC), TC) for _ in range(10)]
        m.drain()
        assert all(m.outcome[p] == "delivered" for p in pids)

    def test_traces_satisfy_reachability(self):
        _, m = machine(seed=5)
        for _ in range(5):
            m.inject("H1", packet_for_class(TC), TC)
        m.drain()
        spec = specs.reachability(TC, "H3")
        for trace in m.completed_traces().values():
            assert trace_satisfies(spec, trace)
            assert is_loop_free(trace)


class TestControlPlane:
    def test_switch_update_applies(self):
        topo, m = machine()
        green = Configuration.from_paths(topo, {TC: GREEN})
        m.set_commands([SwitchUpdate("C2", green.table("C2")),
                        SwitchUpdate("A1", green.table("A1"))])
        m.run_commands_carefully()
        pid = m.inject("H1", packet_for_class(TC), TC)
        m.drain()
        nodes = [v.node for v in m.traces[pid]]
        assert "C2" in nodes and m.outcome[pid] == "delivered"

    def test_epoch_stamping(self):
        _, m = machine()
        pid0 = m.inject("H1", packet_for_class(TC), TC)
        m.set_commands([Incr()])
        m.step_controller()
        pid1 = m.inject("H1", packet_for_class(TC), TC)
        assert m.epoch == 1
        # first packet carries epoch 0, second epoch 1
        m.drain()
        assert m.outcome[pid0] == m.outcome[pid1] == "delivered"

    def test_flush_blocks_until_drained(self):
        _, m = machine()
        m.inject("H1", packet_for_class(TC), TC)
        m.set_commands([Incr(), Flush()])
        assert m.step_controller()  # incr runs
        assert not m.step_controller()  # flush blocked: old packet in flight
        m.drain()
        assert m.step_controller()  # now the flush completes

    def test_wait_expands_and_runs(self):
        topo, m = machine()
        green = Configuration.from_paths(topo, {TC: GREEN})
        m.set_commands(
            [SwitchUpdate("C2", green.table("C2")), Wait(),
             SwitchUpdate("A1", green.table("A1"))]
        )
        m.run_commands_carefully()
        assert not m.commands
        assert m.current_config().table("A1") == green.table("A1")

    def test_bad_update_order_drops_packets(self):
        """Updating A1 before C2 blackholes in-flight traffic (the paper's
        motivating failure)."""
        topo, m = machine(seed=11)
        green = Configuration.from_paths(topo, {TC: GREEN})
        # apply A1 update while a packet sits just before A1
        m.inject("H1", packet_for_class(TC), TC)
        m.run(max_steps=2, allow_controller=False)  # move it a hop or two
        m.set_commands([SwitchUpdate("A1", green.table("A1"))])
        while m.commands:
            m.step_controller()
        m.drain()
        outcomes = set(m.outcome.values())
        # some packet reached C2 before it was ready
        assert "dropped" in outcomes or "delivered" in outcomes

    def test_random_run_interleaves_everything(self):
        topo, m = machine(seed=2)
        green = Configuration.from_paths(topo, {TC: GREEN})
        m.set_commands(
            [SwitchUpdate("C2", green.table("C2")), Wait(),
             SwitchUpdate("A1", green.table("A1"))]
        )
        for _ in range(4):
            m.inject("H1", packet_for_class(TC), TC)
        m.run(max_steps=10000)
        m.drain()
        assert not m.commands
