"""Delta synthesis end to end: churn-trace generation, warm-start vs cold
equivalence, the wire/CLI/bench plumbing, and the docs/API.md contract."""

import dataclasses
import inspect
import json
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.errors import ParseError, ReproError
from repro.net.delta import ProblemPatch
from repro.net.serialize import plan_to_dict, problem_to_dict
from repro.scenarios.churn import (
    churn_records,
    generate_churn,
    onboarding_fan_problems,
    patch_between,
)
from repro.scenarios.corpus import corpus_to_jsonl, generate_corpus, write_corpus
from repro.service import ReproClient, ReproServer, SynthesisService

REPO = Path(__file__).resolve().parent.parent


def normalized_plan(plan) -> dict:
    """plan_to_dict without stats: cold and delta searches agree on the
    *plan* (granularity + command sequence); their search counters differ
    by design (that difference is the whole point)."""
    data = plan_to_dict(plan)
    data.pop("stats", None)
    return data


def run_cold(trace):
    service = SynthesisService(workers=0)
    try:
        results = []
        for record in trace.records:
            job = service.submit(record.problem, job_id=record.scenario_id)
            results.append(service.result(job.job_id))
        return results
    finally:
        service.close()


def run_delta(trace):
    service = SynthesisService(workers=0)
    try:
        job = service.submit(trace.records[0].problem)
        results = [service.result(job.job_id)]
        fingerprint = job.fingerprint
        for record in trace.records[1:]:
            job = service.submit_delta(fingerprint, record.patch)
            results.append(service.result(job.job_id))
            fingerprint = job.fingerprint
        return results
    finally:
        service.close()


class TestChurnGeneration:
    def test_generation_is_deterministic(self):
        first = corpus_to_jsonl(churn_records(quick=True))
        second = corpus_to_jsonl(churn_records(quick=True))
        assert first == second

    def test_full_and_quick_trace_shapes(self):
        full = generate_churn(quick=False)
        quick = generate_churn(quick=True)
        assert [len(t.records) for t in full] == [4, 4, 4]
        assert [len(t.records) for t in quick] == [3, 3]
        for trace in full + quick:
            assert trace.records[0].patch is None
            assert all(r.patch is not None for r in trace.records[1:])
            for prev, cur in zip(trace.records, trace.records[1:]):
                assert cur.base_id == prev.scenario_id

    def test_patch_between_reproduces_rule_churn_exactly(self):
        # no link churn in the plain fan, so the diff round-trips bit-for-bit
        targets = onboarding_fan_problems(3, 2, 3)
        for prev, cur in zip(targets, targets[1:]):
            patched = patch_between(prev, cur).apply_to(prev)
            assert problem_to_dict(patched) == problem_to_dict(cur)

    def test_flap_patches_carry_link_edits(self):
        targets = onboarding_fan_problems(3, 2, 3, decoy_flap=True)
        first = patch_between(targets[0], targets[1])
        second = patch_between(targets[1], targets[2])
        assert first.links_remove == [("D00", "D01")]
        assert [entry[:2] for entry in second.links_add] == [("D00", "D01")]
        assert first.touches_scope() and second.touches_scope()

    def test_patch_between_rejects_class_set_changes(self):
        small = onboarding_fan_problems(2, 1, 2)[0]
        big = onboarding_fan_problems(2, 2, 2)[0]
        with pytest.raises(ReproError, match="different traffic classes"):
            patch_between(small, big)

    def test_registered_suite_emits_delta_lines(self):
        records = generate_corpus("churn", quick=True)
        lines = [json.loads(line) for line in corpus_to_jsonl(records).splitlines()]
        bases = [line for line in lines if "base" not in line]
        deltas = [line for line in lines if "base" in line]
        assert len(bases) == 2 and len(deltas) == 4
        for line in deltas:
            assert "patch" in line and "classes" not in line
            assert line["meta"]["suite"] == "churn"
            ProblemPatch.from_dict(line["patch"])  # wire-parseable


class TestDeltaVsColdEquivalence:
    """The acceptance criteria: identical plans, strictly less search."""

    @pytest.fixture(scope="class")
    def passes(self):
        return [
            (trace, run_cold(trace), run_delta(trace))
            for trace in generate_churn(quick=True)
        ]

    def test_every_step_settles_done_on_both_paths(self, passes):
        for _, cold, delta in passes:
            assert all(r.status.value == "done" for r in cold)
            assert all(r.status.value == "done" for r in delta)

    def test_normalized_plans_identical_on_every_scenario(self, passes):
        for trace, cold, delta in passes:
            for record, c, d in zip(trace.records, cold, delta):
                assert normalized_plan(c.plan) == normalized_plan(d.plan), (
                    record.scenario_id
                )

    def test_delta_steps_warm_start_and_halve_model_checks(self, passes):
        for trace, cold, delta in passes:
            for record, c, d in zip(
                trace.records[1:], cold[1:], delta[1:]
            ):
                assert d.plan.stats.warm_units > 0, record.scenario_id
                assert d.plan.stats.warm_hits > 0, record.scenario_id
                # the >=2x bar of the bench gate, in deterministic units
                assert c.plan.stats.model_checks >= 2 * d.plan.stats.model_checks, (
                    record.scenario_id
                )
                assert d.plan.stats.counterexamples == 0, record.scenario_id

    def test_fingerprints_agree_between_generator_and_engine(self, passes):
        # the delta pass chains engine-resolved problems; the cold pass
        # submits the generator's resolved problems — same fingerprints
        for _, cold, delta in passes:
            assert [r.fingerprint for r in cold] == [r.fingerprint for r in delta]


class TestEngineAndClientFallbacks:
    def test_unknown_base_fingerprint_raises_keyerror(self):
        service = SynthesisService(workers=0)
        try:
            assert not service.has_base("f" * 16)
            with pytest.raises(KeyError):
                service.submit_delta("f" * 16, ProblemPatch())
        finally:
            service.close()

    def test_client_falls_back_to_cold_when_server_lacks_base(self):
        trace = generate_churn(quick=True)[0]
        base, step = trace.records[0], trace.records[1]
        with ReproServer(port=0, workers=0) as srv:
            client = ReproClient(srv.url)
            # the server never saw the base; the client holds the problem
            view = client.submit_delta(
                "deadbeef" * 8, step.patch, base_problem=base.problem
            )
            result = client.result(view.job_id, timeout=60)
            assert result.status.value == "done"
            assert problem_to_dict(step.problem) == problem_to_dict(
                step.patch.apply_to(base.problem)
            )

    def test_wire_delta_without_fallback_surfaces_404(self):
        with ReproServer(port=0, workers=0) as srv:
            client = ReproClient(srv.url)
            with pytest.raises(KeyError):
                client.submit_delta("deadbeef" * 8, ProblemPatch(), fallback=False)

    def post(self, server, body: bytes):
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return urllib.request.urlopen(request)

    def test_malformed_patch_is_400_parse_envelope(self):
        trace = generate_churn(quick=True)[0]
        with ReproServer(port=0, workers=0) as srv:
            client = ReproClient(srv.url)
            view = client.submit(trace.records[0].problem)
            client.result(view.job_id, timeout=60)
            body = json.dumps(
                {"base": view.fingerprint, "patch": {"linkz": []}}
            ).encode()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.post(srv, body)
            assert excinfo.value.code == 400
            envelope = json.loads(excinfo.value.read())
            assert envelope["error"]["code"] == "parse"
            assert envelope["error"]["exit_code"] == 4

    def test_inapplicable_patch_is_400_parse_envelope(self):
        trace = generate_churn(quick=True)[0]
        with ReproServer(port=0, workers=0) as srv:
            client = ReproClient(srv.url)
            view = client.submit(trace.records[0].problem)
            client.result(view.job_id, timeout=60)
            body = json.dumps(
                {
                    "base": view.fingerprint,
                    "patch": {"links_remove": [["NOPE-A", "NOPE-B"]]},
                }
            ).encode()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.post(srv, body)
            assert excinfo.value.code == 400
            assert json.loads(excinfo.value.read())["error"]["code"] == "parse"


class TestBatchCliDeltas:
    def test_batch_runs_a_churn_corpus_in_process(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "churn.jsonl"
        write_corpus(generate_corpus("churn", quick=True), str(path))
        assert main(["batch", str(path), "--serial", "--no-plans"]) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(rows) == 6
        assert {row["status"] for row in rows} == {"done"}

    def test_batch_rejects_delta_before_its_base(self, tmp_path):
        from repro.cli import main

        records = generate_corpus("churn", quick=True)
        step = next(r for r in records if r.patch is not None)
        path = tmp_path / "orphan.jsonl"
        path.write_text(json.dumps(step.to_jobs_dict()) + "\n")
        assert main(["batch", str(path), "--serial"]) == 4  # parse error

    def test_loader_rejects_delta_without_patch_object(self, tmp_path):
        from repro.cli import _load_batch_jobs

        path = tmp_path / "bad.jsonl"
        path.write_text('{"base": "some-id", "id": "x"}\n')
        with pytest.raises(ParseError, match="'patch' object"):
            _load_batch_jobs(str(path))


class TestChurnBench:
    def test_two_pass_document_shape_and_search_gap(self):
        from repro.bench.churn import run_churn_suite

        document = run_churn_suite(quick=True)
        churn = document["totals"]["churn"]
        assert document["schema"].startswith("repro-bench/")
        assert document["suite"] == "churn"
        assert churn["traces"] == 2 and churn["delta_steps"] == 4
        assert churn["plans_match"] is True
        delta_rows = [row for row in document["scenarios"] if row["delta"]]
        assert len(delta_rows) == 4
        for row in delta_rows:
            assert row["status"] == "done" and row["cold_status"] == "done"
            assert row["warm_hits"] > 0
            # deterministic form of the >=2x gate (wall time is gated in CI)
            assert row["cold_model_checks"] >= 2 * row["model_checks"]

    def test_compare_against_missing_baseline_is_a_clear_error(self, tmp_path):
        from repro.bench.runner import load_bench

        missing = tmp_path / "BENCH_never_committed.json"
        with pytest.raises(ReproError, match="no BENCH baseline"):
            load_bench(str(missing))

    def test_committed_churn_baseline_is_loadable_and_gated(self):
        from repro.bench.runner import load_bench

        document = load_bench(str(REPO / "benchmarks/baselines/BENCH_churn.json"))
        assert document["suite"] == "churn"
        assert document["totals"]["churn"]["ok"] is True
        assert document["totals"]["churn"]["speedup_target"] == 2.0


class TestApiReferenceDoc:
    """docs/API.md must cover every wire document and live endpoint."""

    @pytest.fixture(scope="class")
    def DOC(self):
        return (REPO / "docs" / "API.md").read_text()

    def test_every_schema_document_class_is_documented(self, DOC):
        import repro.api.schema as schema

        classes = [
            name
            for name, obj in inspect.getmembers(schema, inspect.isclass)
            if dataclasses.is_dataclass(obj) and obj.__module__ == schema.__name__
        ]
        assert len(classes) >= 9  # the repro-api/1 document set
        for name in classes:
            assert name in DOC, f"docs/API.md does not mention {name}"

    def test_every_live_endpoint_is_documented(self, DOC):
        for endpoint in (
            "POST /v1/jobs",
            "GET /v1/jobs",
            "GET /v1/jobs/{id}",
            "DELETE /v1/jobs/{id}",
            "GET /v1/metrics",
            "GET /v1/cache/stats",
            "GET /v1/healthz",
            "POST /v1/fleet/lease",
            "POST /v1/fleet/complete",
            "POST /v1/fleet/heartbeat",
        ):
            assert endpoint in DOC, f"docs/API.md does not document {endpoint}"

    def test_error_taxonomy_and_wait_semantics_are_documented(self, DOC):
        for needle in ("exit_code", "wait=", "ErrorEnvelope", "SynthesisDelta"):
            assert needle in DOC
