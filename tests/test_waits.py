"""Tests for the wait-removal heuristic (§4.2.C)."""


from repro.ltl import specs
from repro.net.commands import SwitchUpdate, Wait
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.synthesis import order_update, remove_waits
from repro.synthesis.plan import UpdatePlan
from repro.synthesis.waits import _class_edges, _reaches
from repro.topo import chained_diamond, mini_datacenter, ring_diamond

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
BLUE = ["H1", "T1", "A2", "C1", "A4", "T3", "H3"]


class TestEdgesAndReachability:
    def test_forwarding_edges_follow_config(self):
        topo = mini_datacenter()
        config = Configuration.from_paths(topo, {TC: RED})
        edges = _class_edges(topo, config, None)
        assert ("T1", "A1") in edges
        assert ("A1", "C1") in edges
        assert ("T3", "A1") not in edges  # T3 forwards to H3 (a host)

    def test_reaches_transitive(self):
        edges = {("a", "b"), ("b", "c")}
        assert _reaches(edges, "a", "c")
        assert not _reaches(edges, "c", "a")

    def test_reaches_requires_a_hop(self):
        assert not _reaches(set(), "a", "a")


class TestRemoveWaits:
    def test_disjoint_updates_need_no_wait(self):
        """C2 is unreachable before A1 flips: the wait between them drops."""
        topo = mini_datacenter()
        init = Configuration.from_paths(topo, {TC: RED})
        final = Configuration.from_paths(topo, {TC: GREEN})
        plan = UpdatePlan(
            [
                SwitchUpdate("C2", final.table("C2")),
                Wait(),
                SwitchUpdate("A1", final.table("A1")),
            ]
        )
        slim = remove_waits(topo, init, plan)
        assert slim.num_waits() == 0
        assert slim.stats.waits_before_removal == 1
        assert slim.stats.waits_after_removal == 0

    def test_wait_kept_when_packets_could_chase_update(self):
        """T1 forwards into A2 before flipping; A2->C1 path reaches C1, so a
        wait must survive before C1's update (the paper's red->blue case)."""
        topo = mini_datacenter()
        init = Configuration.from_paths(topo, {TC: RED})
        final = Configuration.from_paths(topo, {TC: BLUE})
        plan = UpdatePlan(
            [
                SwitchUpdate("A2", final.table("A2")),
                Wait(),
                SwitchUpdate("A4", final.table("A4")),
                Wait(),
                SwitchUpdate("T1", final.table("T1")),
                Wait(),
                SwitchUpdate("C1", final.table("C1")),
            ]
        )
        slim = remove_waits(topo, init, plan)
        commands = list(slim.commands)
        # find what precedes C1's update
        c1_index = next(
            i for i, c in enumerate(commands)
            if isinstance(c, SwitchUpdate) and c.switch == "C1"
        )
        assert isinstance(commands[c1_index - 1], Wait)
        # but the A2 -> A4 wait is gone (both unreachable)
        a4_index = next(
            i for i, c in enumerate(commands)
            if isinstance(c, SwitchUpdate) and c.switch == "A4"
        )
        assert not isinstance(commands[a4_index - 1], Wait)

    def test_update_order_is_preserved(self):
        topo = mini_datacenter()
        init = Configuration.from_paths(topo, {TC: RED})
        final = Configuration.from_paths(topo, {TC: GREEN})
        plan = order_update(topo, init, final, {TC: ["H1"]}, specs.reachability(TC, "H3"))
        slim = remove_waits(topo, init, plan)
        assert [c.switch for c in slim.updates()] == [c.switch for c in plan.updates()]

    def test_ring_diamond_removes_most_waits(self):
        sc = ring_diamond(30, seed=4)
        plan = order_update(sc.topology, sc.init, sc.final, sc.ingresses, sc.spec)
        slim = remove_waits(sc.topology, sc.init, plan)
        removed = slim.stats.waits_before_removal - slim.stats.waits_after_removal
        assert slim.stats.waits_before_removal >= 25
        # the paper reports ~99.9% removal; we require the vast majority
        assert removed / max(1, slim.stats.waits_before_removal) > 0.85
        assert slim.stats.waits_after_removal <= 4

    def test_chained_diamond_waits(self):
        sc = chained_diamond(3, 3, prop="chain")
        plan = order_update(sc.topology, sc.init, sc.final, sc.ingresses, sc.spec)
        slim = remove_waits(sc.topology, sc.init, plan)
        assert slim.stats.waits_after_removal <= slim.stats.waits_before_removal

    def test_empty_plan(self):
        topo = mini_datacenter()
        init = Configuration.from_paths(topo, {TC: RED})
        slim = remove_waits(topo, init, UpdatePlan([]))
        assert slim.num_updates() == 0
        assert slim.num_waits() == 0
