"""Static analysis subsystem: linter soundness, patch conflicts, plan audits.

The load-bearing property is *soundness*: every ``infeasible``-family
diagnostic the problem linter emits must match the solver's verdict
(static-infeasible ⇒ solver-infeasible), and the linter must never flag a
solver-feasible corpus problem as an error.  Both directions are enforced
differentially here on seeded diamond/ring corpora, and the engine-level
``preflight`` option is checked for byte-identical verdicts and normalized
plans against a preflight-off run.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ANALYSIS_SCHEMA,
    DIAGNOSTIC_CODES,
    AnalysisReport,
    Diagnostic,
    TargetReport,
    analyze_patch,
    analyze_problem,
    audit_plan,
    class_closure,
    static_infeasibility,
)
from repro.errors import UpdateInfeasibleError
from repro.ltl.parser import parse
from repro.net.delta import ProblemPatch
from repro.net.rules import Forward, Pattern, Rule, Table
from repro.net.serialize import Problem, plan_to_dict, problem_to_dict
from repro.scenarios.corpus import generate_corpus, sample_records
from repro.synthesis import UpdateSynthesizer
from repro.synthesis.plan import UpdatePlan
from repro.topo import double_diamond, ring_diamond

REPO = Path(__file__).resolve().parent.parent


def normalized_plan(plan) -> dict:
    data = plan_to_dict(plan)
    data.pop("stats", None)
    return data


def problem_of(scenario, spec_text: str) -> Problem:
    return Problem(
        topology=scenario.topology,
        ingresses={tc: list(h) for tc, h in scenario.ingresses.items()},
        init=scenario.init,
        final=scenario.final,
        spec=parse(spec_text),
        spec_text=spec_text,
    )


def guard_of(tc) -> str:
    return " & ".join(f"{f}={v}" for f, v in sorted(tc.field_map().items()))


def solver_verdict(problem: Problem, granularity: str = "switch") -> str:
    synth = UpdateSynthesizer(problem.topology, granularity=granularity)
    try:
        synth.synthesize(problem.init, problem.final, problem.spec, problem.ingresses)
        return "feasible"
    except UpdateInfeasibleError:
        return "infeasible"


def unreached_switch(problem: Problem) -> str:
    """A switch some endpoint configuration's closures never reach.

    Infeasibility only needs *one* endpoint to miss a required node: the
    solver model-checks the initial and final configurations separately, so
    ``F at(w)`` with ``w`` off the initial paths is already unsatisfiable.
    """
    for config in (problem.init, problem.final):
        reached = set()
        for tc, hosts in problem.ingresses.items():
            reached |= class_closure(problem.topology, config, tc, hosts).nodes
        spare = sorted(str(sw) for sw in set(problem.topology.switches) - reached)
        if spare:
            return spare[0]
    raise AssertionError("every switch is on some path; pick a bigger topology")


# ----------------------------------------------------------------------
# diagnostics format
# ----------------------------------------------------------------------
class TestDiagnosticsFormat:
    def test_diagnostic_round_trip(self):
        diag = Diagnostic(
            "RA010", "error", "w unreachable", family="infeasible", certificate="path"
        )
        assert Diagnostic.from_dict(diag.to_dict()) == diag

    def test_unknown_code_and_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("RA999", "error", "nope")
        with pytest.raises(ValueError):
            Diagnostic("RA010", "fatal", "nope")

    def test_report_round_trip_and_schema(self):
        report = AnalysisReport(
            targets=[
                TargetReport(
                    "t1", "problem", [Diagnostic("RA002", "warn", "absent node")]
                )
            ]
        )
        doc = report.to_dict()
        assert doc["schema"] == ANALYSIS_SCHEMA
        back = AnalysisReport.from_dict(doc)
        assert back.to_dict() == doc

    def test_exit_codes_map_onto_shared_taxonomy(self):
        def report_with(*diags):
            return AnalysisReport(targets=[TargetReport("t", "problem", list(diags))])

        assert report_with().exit_code() == 0
        assert report_with(Diagnostic("RA002", "warn", "m")).exit_code() == 0
        assert (
            report_with(Diagnostic("RA001", "error", "m", family="parse")).exit_code()
            == 4
        )
        # infeasible outranks parse
        assert (
            report_with(
                Diagnostic("RA001", "error", "m", family="parse"),
                Diagnostic("RA010", "error", "m", family="infeasible"),
            ).exit_code()
            == 2
        )

    def test_every_code_is_described(self):
        for code, description in DIAGNOSTIC_CODES.items():
            assert code.startswith("RA") and len(code) == 5
            assert description


# ----------------------------------------------------------------------
# reachability closure
# ----------------------------------------------------------------------
class TestClassClosure:
    def test_closure_covers_the_forwarding_path(self):
        scenario = ring_diamond(8, seed=1)
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        tc = next(iter(problem.ingresses))
        closure = class_closure(problem.topology, problem.init, tc, ["Hsrc"])
        assert "Hdst" in closure.delivered
        assert closure.loop is None
        known_path = scenario.init_paths[tc]
        switches = [n for n in known_path if problem.topology.is_switch(n)]
        assert set(switches) <= closure.nodes
        witness = closure.path_to(switches[-1])
        assert witness is not None and witness[0] == switches[0]

    def test_drop_detected_on_empty_table(self):
        scenario = ring_diamond(8, seed=1)
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        tc = next(iter(problem.ingresses))
        from repro.net.config import Configuration

        closure = class_closure(problem.topology, Configuration.empty(), tc, ["Hsrc"])
        assert closure.dropped
        assert not closure.delivered

    def test_forwarding_loop_detected(self):
        scenario = ring_diamond(8, seed=1)
        topo = scenario.topology
        tc = next(iter(scenario.ingresses))
        # S0 -> S1 -> S0: a two-switch loop
        bounce = Rule.make(
            100, Pattern.make(**tc.field_map()), [Forward(topo.port_to("S1", "S0"))]
        )
        loop_config = scenario.init.with_table("S1", Table([bounce]))
        closure = class_closure(topo, loop_config, tc, ["Hsrc"])
        assert closure.loop is not None
        assert set(closure.loop) <= set(closure.nodes)


# ----------------------------------------------------------------------
# problem linter: hygiene diagnostics
# ----------------------------------------------------------------------
class TestProblemLinter:
    @pytest.fixture(scope="class")
    def scenario(self):
        return ring_diamond(8, seed=3)

    def test_clean_problem_has_no_diagnostics(self, scenario):
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        report = analyze_problem(problem)
        assert report.diagnostics == []
        assert not report.statically_infeasible

    def test_absent_spec_node_warns_vacuity(self, scenario):
        problem = problem_of(scenario, "dst=Hdst => F at(NOWHERE)")
        codes = {d.code for d in analyze_problem(problem).diagnostics}
        assert "RA002" in codes

    def test_unmatched_guard_warns_vacuity(self, scenario):
        problem = problem_of(scenario, "dst=NOSUCH => F at(Hdst)")
        codes = {d.code for d in analyze_problem(problem).diagnostics}
        assert "RA003" in codes

    def test_unknown_ingress_is_parse_family(self, scenario):
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        tc = next(iter(problem.ingresses))
        problem.ingresses[tc] = ["GHOST"]
        report = analyze_problem(problem)
        errors = [d for d in report.errors if d.code == "RA001"]
        assert errors and all(d.family == "parse" for d in errors)
        wrapped = AnalysisReport(targets=[report])
        assert wrapped.exit_code() == 4
        # the solver would *error* here, so preflight must stand down
        assert static_infeasibility(problem) is None

    def test_dead_rule_warns(self, scenario):
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        dead = Rule.make(50, Pattern.make(dst="NOBODY"), [Forward(1)])
        switch = sorted(problem.init.switches())[0]
        table = Table(list(problem.init.table(switch).rules) + [dead])
        problem = Problem(
            topology=problem.topology,
            ingresses=problem.ingresses,
            init=problem.init.with_table(switch, table),
            final=problem.final,
            spec=problem.spec,
            spec_text=problem.spec_text,
        )
        codes = {d.code for d in analyze_problem(problem).diagnostics}
        assert "RA020" in codes

    def test_unreachable_configured_switch_warns(self, scenario):
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        spare = unreached_switch(problem)
        tc = next(iter(problem.ingresses))
        stray = Table([Rule.make(10, Pattern.make(**tc.field_map()), [Forward(1)])])
        problem = Problem(
            topology=problem.topology,
            ingresses=problem.ingresses,
            init=problem.init.with_table(spare, stray),
            final=problem.final,
            spec=problem.spec,
            spec_text=problem.spec_text,
        )
        codes = {d.code for d in analyze_problem(problem).diagnostics}
        assert "RA021" in codes


# ----------------------------------------------------------------------
# problem linter: differential soundness
# ----------------------------------------------------------------------
class TestDifferentialSoundness:
    """static-infeasible ⇒ solver-infeasible; feasible corpus ⇒ no errors."""

    def test_smoke_corpus_is_error_free(self):
        for record in generate_corpus("smoke", quick=True):
            report = analyze_problem(record.problem, target=record.scenario_id)
            assert report.errors == [], (
                f"{record.scenario_id}: linter flagged a corpus problem: "
                f"{[d.render() for d in report.errors]}"
            )

    def test_churn_corpus_is_error_free(self):
        for record in generate_corpus("churn", quick=True):
            report = analyze_problem(record.problem, target=record.scenario_id)
            assert report.errors == []

    @pytest.mark.parametrize("seed", [1, 5])
    def test_unreachable_waypoint_matches_solver(self, seed):
        scenario = ring_diamond(8, seed=seed)
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        spare = unreached_switch(problem)
        tc = next(iter(problem.ingresses))
        bad = problem_of(scenario, f"({guard_of(tc)}) => F at({spare})")
        diag = static_infeasibility(bad)
        assert diag is not None and diag.code == "RA010"
        assert diag.certificate
        assert solver_verdict(bad) == "infeasible"

    def test_forbidden_node_matches_solver(self):
        scenario = ring_diamond(8, seed=2)
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        tc = next(iter(problem.ingresses))
        hosts = problem.ingresses[tc]
        on_path = class_closure(problem.topology, problem.init, tc, hosts)
        transit = sorted(
            n for n in on_path.nodes if problem.topology.is_switch(n) and n != "S0"
        )[0]
        bad = problem_of(
            scenario, f"({guard_of(tc)}) => (G !at({transit}) & F at(Hdst))"
        )
        diag = static_infeasibility(bad)
        assert diag is not None and diag.code == "RA011"
        assert "witness path" in diag.certificate
        assert solver_verdict(bad) == "infeasible"

    def test_blackhole_drop_matches_solver(self):
        scenario = ring_diamond(8, seed=4)
        tc = next(iter(scenario.ingresses))
        # cut the init path at its second switch: traffic drops mid-way
        problem = problem_of(scenario, f"({guard_of(tc)}) => G !dropped")
        hosts = problem.ingresses[tc]
        closure = class_closure(problem.topology, problem.init, tc, hosts)
        transit = sorted(
            n for n in closure.nodes if problem.topology.is_switch(n) and n != "S0"
        )[0]
        from repro.net.rules import EMPTY_TABLE

        cut = Problem(
            topology=problem.topology,
            ingresses=problem.ingresses,
            init=problem.init.with_table(transit, EMPTY_TABLE),
            final=problem.final,
            spec=problem.spec,
            spec_text=problem.spec_text,
        )
        diag = static_infeasibility(cut)
        assert diag is not None and diag.code == "RA012"
        assert solver_verdict(cut) == "infeasible"

    def test_false_spec_matches_solver(self):
        scenario = ring_diamond(8, seed=0)
        tc = next(iter(scenario.ingresses))
        guard = guard_of(tc)
        # header fields are immutable per class, so demanding a different
        # dst specializes the whole spec to FALSE for this class
        bad = problem_of(scenario, f"({guard}) => dst=NOWHERE")
        diag = static_infeasibility(bad)
        assert diag is not None and diag.code == "RA014"
        assert solver_verdict(bad) == "infeasible"

    def test_loop_matches_solver(self):
        scenario = ring_diamond(8, seed=1)
        tc = next(iter(scenario.ingresses))
        topo = scenario.topology
        bounce = Rule.make(
            100, Pattern.make(**tc.field_map()), [Forward(topo.port_to("S1", "S0"))]
        )
        loop_config = scenario.init.with_table("S1", Table([bounce]))
        looped = Problem(
            topology=topo,
            ingresses={tc: list(h) for tc, h in scenario.ingresses.items()},
            init=loop_config,
            final=scenario.final,
            spec=parse("dst=Hdst => F at(Hdst)"),
            spec_text="dst=Hdst => F at(Hdst)",
        )
        diag = static_infeasibility(looped)
        assert diag is not None and diag.code == "RA013"
        assert solver_verdict(looped) == "infeasible"


# ----------------------------------------------------------------------
# patch analyzer
# ----------------------------------------------------------------------
class TestPatchAnalyzer:
    @pytest.fixture(scope="class")
    def base(self):
        scenario = ring_diamond(8, seed=1)
        return problem_of(scenario, "dst=Hdst => F at(Hdst)")

    def test_empty_patch_is_info(self, base):
        report, resolved = analyze_patch(base, ProblemPatch())
        assert {d.code for d in report.diagnostics} == {"RA107"}
        assert resolved is not None

    def test_removing_absent_link_is_parse_error(self, base):
        patch = ProblemPatch(links_remove=[("S0", "NOWHERE")])
        report, resolved = analyze_patch(base, patch)
        assert any(d.code == "RA101" and d.family == "parse" for d in report.errors)
        assert resolved is None

    def test_removing_forwarded_link_warns(self, base):
        scenario = ring_diamond(8, seed=1)
        tc = next(iter(base.ingresses))
        # second and third hop of the known init path: a switch-switch link
        # the initial configuration actively forwards over
        a, b = scenario.init_paths[tc][1:3]
        report, _resolved = analyze_patch(base, ProblemPatch(links_remove=[(a, b)]))
        assert any(d.code == "RA103" for d in report.diagnostics)

    def test_unknown_class_retarget_is_parse_error(self, base):
        report, resolved = analyze_patch(
            base, ProblemPatch(ingresses={"ghost_class": ["Hsrc"]})
        )
        assert any(d.code == "RA106" for d in report.errors)
        assert resolved is None

    def test_bad_replacement_spec_is_parse_error(self, base):
        report, resolved = analyze_patch(base, ProblemPatch(spec="=> (("))
        assert any(d.code == "RA105" for d in report.errors)
        assert resolved is None

    def test_clean_patch_resolves_and_lints(self, base):
        tc = next(iter(base.ingresses))
        patch = ProblemPatch(ingresses={tc.name: ["Hsrc"]})
        report, resolved = analyze_patch(base, patch, lint_resolved=True)
        assert report.errors == []
        assert resolved is not None


# ----------------------------------------------------------------------
# plan auditor
# ----------------------------------------------------------------------
class TestPlanAuditor:
    def test_every_smoke_plan_audits_clean(self):
        records = sample_records(generate_corpus("smoke", quick=True), 10)
        audited = 0
        for record in records:
            problem = record.problem
            synth = UpdateSynthesizer(problem.topology, granularity=record.granularity)
            try:
                plan = synth.synthesize(
                    problem.init, problem.final, problem.spec, problem.ingresses
                )
            except UpdateInfeasibleError:
                continue
            report = audit_plan(problem, plan, target=record.scenario_id)
            assert report.diagnostics == [], (
                f"{record.scenario_id}: {[d.render() for d in report.diagnostics]}"
            )
            audited += 1
        assert audited >= 5

    @pytest.fixture(scope="class")
    def solved(self):
        scenario = ring_diamond(8, seed=1)
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        synth = UpdateSynthesizer(problem.topology)
        plan = synth.synthesize(
            problem.init, problem.final, problem.spec, problem.ingresses
        )
        return problem, plan

    def test_missing_update_is_flagged(self, solved):
        problem, plan = solved
        from repro.net.commands import is_update

        updates = [c for c in plan.commands if is_update(c)]
        assert len(updates) >= 2
        dropped_one = UpdatePlan(
            [c for c in plan.commands if c is not updates[-1]],
            plan.granularity,
            plan.stats,
        )
        report = audit_plan(problem, dropped_one)
        assert any(d.code == "RA205" for d in report.errors)

    def test_duplicate_update_is_flagged(self, solved):
        problem, plan = solved
        from repro.net.commands import is_update

        first = next(c for c in plan.commands if is_update(c))
        doubled = UpdatePlan(
            list(plan.commands) + [first], plan.granularity, plan.stats
        )
        report = audit_plan(problem, doubled)
        assert any(d.code == "RA204" for d in report.errors)

    def test_foreign_switch_is_flagged(self, solved):
        problem, plan = solved
        from repro.net.commands import SwitchUpdate
        from repro.net.rules import EMPTY_TABLE

        alien = UpdatePlan(
            list(plan.commands) + [SwitchUpdate("MARS", EMPTY_TABLE)],
            plan.granularity,
            plan.stats,
        )
        report = audit_plan(problem, alien)
        assert any(d.code == "RA201" for d in report.errors)

    def test_granularity_mismatch_is_flagged(self, solved):
        problem, plan = solved
        mismatched = UpdatePlan(list(plan.commands), "rule", plan.stats)
        report = audit_plan(problem, mismatched)
        assert any(d.code == "RA203" for d in report.errors)

    def test_leading_wait_warns(self, solved):
        problem, plan = solved
        from repro.net.commands import Wait

        padded = UpdatePlan([Wait()] + list(plan.commands), plan.granularity, plan.stats)
        report = audit_plan(problem, padded)
        assert any(d.code == "RA206" and d.severity == "warn" for d in report.diagnostics)
        assert not report.errors


# ----------------------------------------------------------------------
# engine preflight
# ----------------------------------------------------------------------
class TestEnginePreflight:
    def _statically_infeasible_problem(self):
        scenario = ring_diamond(8, seed=7)
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        spare = unreached_switch(problem)
        tc = next(iter(problem.ingresses))
        return problem_of(scenario, f"({guard_of(tc)}) => F at({spare})")

    def test_preflight_short_circuits_without_search(self, monkeypatch):
        from repro.service import SynthesisOptions, SynthesisService
        from repro.service import engine as engine_mod

        def boom(*args, **kwargs):
            raise AssertionError("preflight must not enter the search")

        monkeypatch.setattr(engine_mod, "_execute_payload", boom)
        service = SynthesisService(
            workers=0, default_options=SynthesisOptions(preflight=True)
        )
        job = service.submit(self._statically_infeasible_problem(), job_id="static")
        result = service.result(job.job_id)
        assert result.status.value == "infeasible"
        assert result.message.startswith("(static)")
        assert "RA010" in result.message
        assert result.plan is None

    def test_preflight_matches_solver_on_corpora(self):
        from repro.service import SynthesisOptions, SynthesisService

        records = sample_records(generate_corpus("smoke", quick=True), 6)
        records += generate_corpus("churn", quick=True)[:3]
        outcomes = {}
        for preflight in (False, True):
            service = SynthesisService(
                workers=0, default_options=SynthesisOptions(preflight=preflight)
            )
            rows = []
            for index, record in enumerate(records):
                job = service.submit(record.problem, job_id=f"job-{index}")
                result = service.result(job.job_id)
                rows.append(
                    (
                        result.status.value,
                        normalized_plan(result.plan) if result.plan else None,
                    )
                )
            outcomes[preflight] = rows
        # byte-identical verdicts and normalized plans either way
        assert json.dumps(outcomes[False], sort_keys=True) == json.dumps(
            outcomes[True], sort_keys=True
        )

    def test_preflight_excluded_from_fingerprint(self):
        from repro.service import SynthesisOptions
        from repro.service.jobs import SynthesisJob

        problem = self._statically_infeasible_problem()
        cold = SynthesisJob("a", problem, SynthesisOptions(preflight=False))
        hot = SynthesisJob("b", problem, SynthesisOptions(preflight=True))
        assert cold.fingerprint == hot.fingerprint

    def test_preflight_on_wire_round_trips(self):
        from repro.api.schema import options_from_dict, options_to_dict
        from repro.service import SynthesisOptions

        options = SynthesisOptions(preflight=True)
        doc = options_to_dict(options)
        assert doc["preflight"] is True
        assert options_from_dict(doc) == options
        assert options_from_dict({"preflight": True}).preflight is True


# ----------------------------------------------------------------------
# CLI + docs + repo invariants
# ----------------------------------------------------------------------
class TestAnalyzeCli:
    def test_clean_problem_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        scenario = ring_diamond(8, seed=1)
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        path = tmp_path / "p.json"
        path.write_text(json.dumps(problem_to_dict(problem)))
        assert main(["analyze", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_statically_infeasible_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        scenario = ring_diamond(8, seed=1)
        problem = problem_of(scenario, "dst=Hdst => F at(Hdst)")
        spare = unreached_switch(problem)
        tc = next(iter(problem.ingresses))
        bad = problem_of(scenario, f"({guard_of(tc)}) => F at({spare})")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(problem_to_dict(bad)))
        assert main(["analyze", str(path), "--json"]) == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == ANALYSIS_SCHEMA
        assert doc["targets"][0]["statically_infeasible"] is True

    def test_unreadable_file_exits_four(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        assert main(["analyze", str(path)]) == 4
        assert "RA000" in capsys.readouterr().out

    def test_suite_smoke_is_clean(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--suite", "smoke", "--quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["totals"]["ok"] is True
        assert doc["totals"]["targets"] > 0

    def test_no_input_is_parse_error(self):
        from repro.cli import main

        assert main(["analyze"]) == 4

    def test_batch_unknown_base_names_path_and_line(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "batch.jsonl"
        path.write_text(
            '{"base": "missing", "patch": {}, "id": "delta-1"}\n'
        )
        code = main(["batch", str(path), "--serial"])
        assert code == 4
        err = capsys.readouterr().err
        assert f"{path}:1:" in err


class TestDocsAndInvariants:
    def test_analysis_schema_documented_in_api_md(self):
        doc = (REPO / "docs" / "API.md").read_text()
        assert ANALYSIS_SCHEMA in doc
        for name in ("Diagnostic", "TargetReport", "AnalysisReport"):
            assert name in doc

    def test_readme_documents_every_diagnostic_code(self):
        readme = (REPO / "README.md").read_text()
        assert "repro analyze" in readme
        for code in DIAGNOSTIC_CODES:
            assert code in readme, f"README.md does not document {code}"

    def test_architecture_documents_analysis_flow(self):
        doc = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "repro.analysis" in doc
        assert "preflight" in doc

    def test_check_invariants_passes_on_this_tree(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_invariants.py")],
            capture_output=True,
            text=True,
            cwd=str(REPO),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
