"""Tests for the dataset registry: roles, sources, derivation, manifests.

The property tests here are the dataset pipeline's contract: every
auto-derived spec parses and is non-vacuous under the static analyzer, and
a build is a pure function of its inputs (two builds of the same inputs
produce identical manifest hashes).
"""

import json
import os

import pytest

from repro.analysis import analyze_problem
from repro.cli import main
from repro.datasets import (
    DATASET_SCHEMA,
    PROBLEMS_FILE,
    ROLES,
    SPEC_KINDS,
    articulation_points,
    build_dataset,
    classify_roles,
    collect_sources,
    derive_problems,
    list_datasets,
    load_dataset_records,
    load_manifest,
    role_counts,
    topology_content_hash,
    verify_dataset,
)
from repro.errors import ReproError
from repro.ltl.parser import parse
from repro.net.topology import Topology
from repro.scenarios.corpus import corpus_to_jsonl, generate_corpus
from repro.topo import to_gml
from repro.topo.zoo import zoo_topology


def star_plus_ring():
    """A ring core with a stub gateway: every role is represented."""
    topo = Topology()
    for name in ("c1", "c2", "c3", "c4", "stub"):
        topo.add_switch(name)
    topo.add_link("c1", "c2")
    topo.add_link("c2", "c3")
    topo.add_link("c3", "c4")
    topo.add_link("c4", "c1")
    topo.add_link("c1", "c3")
    topo.add_link("c2", "stub")
    return topo


class TestRoles:
    def test_gateway_is_degree_one(self):
        roles = classify_roles(star_plus_ring())
        assert roles["stub"] == "gateway"

    def test_articulation_point_is_core(self):
        roles = classify_roles(star_plus_ring())
        # c2 is the cut vertex to the stub
        assert "c2" in articulation_points(star_plus_ring())
        assert roles["c2"] == "core"

    def test_every_switch_gets_exactly_one_role(self):
        topo = zoo_topology("abilene")
        roles = classify_roles(topo)
        assert set(roles) == set(topo.switches)
        assert set(roles.values()) <= set(ROLES)
        counts = role_counts(roles)
        assert sum(counts.values()) == len(topo.switches)
        assert set(counts) == set(ROLES)

    def test_chain_interior_all_articulation(self):
        topo = Topology()
        for name in ("a", "b", "c", "d"):
            topo.add_switch(name)
        topo.add_link("a", "b")
        topo.add_link("b", "c")
        topo.add_link("c", "d")
        assert articulation_points(topo) == {"b", "c"}


class TestSources:
    def test_builtin_and_synthetic(self):
        entries, drops = collect_sources(["builtin", "synthetic"], synthetic_count=8)
        assert len(entries) == 12
        assert all(not v for v in drops.values())
        assert len({e.name for e in entries}) == len(entries)

    def test_structural_dedup(self):
        topo = zoo_topology("abilene")
        assert topology_content_hash(topo) == topology_content_hash(topo.copy())

    def test_gml_dir_ingestion(self, tmp_path):
        (tmp_path / "one.gml").write_text(to_gml(zoo_topology("abilene")))
        (tmp_path / "dupe.gml").write_text(to_gml(zoo_topology("abilene")))
        (tmp_path / "bad.gml").write_text("graph [ node [ id ] ]")
        entries, drops = collect_sources(["gml"], gml_dir=str(tmp_path))
        assert [e.name for e in entries] == ["dupe"]  # sorted order: dupe first
        assert drops["duplicate_topology"] == 1
        assert drops["unparseable_gml"] == 1

    def test_unknown_source_rejected(self):
        with pytest.raises(ReproError):
            collect_sources(["nope"])
        with pytest.raises(ReproError):
            collect_sources(["gml"])  # needs --gml-dir


class TestDerivation:
    def test_specs_parse_and_are_nonvacuous(self):
        entries, _ = collect_sources(["builtin"])
        for entry in entries:
            derivation = derive_problems(entry)
            assert derivation.problems, entry.name
            for derived in derivation.problems:
                parse(derived.spec_text)  # concrete syntax, must parse
                report = analyze_problem(derived.problem, target=derived.record_id)
                assert not report.errors, derived.record_id
                assert derived.problem.spec_text == derived.spec_text
                assert derived.updating > 0  # a real update, not a no-op

    def test_drops_are_counted_never_silent(self):
        # a tree has no diamond anywhere: every kind must drop, with reasons
        topo = Topology()
        for name in ("a", "b", "c", "d"):
            topo.add_switch(name)
        topo.add_link("a", "b")
        topo.add_link("b", "c")
        topo.add_link("c", "d")
        from repro.datasets import SourceEntry

        entry = SourceEntry("builtin", "tree", "test", topo, topology_content_hash(topo))
        derivation = derive_problems(entry)
        assert not derivation.problems
        assert len(derivation.drops) == len(SPEC_KINDS)
        assert all(d.reason == "no_diamond" for d in derivation.drops)

    def test_robust_duplicate_tags_first_problem(self):
        entries, _ = collect_sources(["builtin"])
        derivation = derive_problems(entries[0])
        robust = [p for p in derivation.problems if p.perturbation == "robust"]
        assert len(robust) == 1
        assert robust[0].template == derivation.problems[0].template

    def test_deterministic(self):
        entries, _ = collect_sources(["builtin"])
        one = derive_problems(entries[0])
        two = derive_problems(entries[0])
        assert [p.record_id for p in one.problems] == [p.record_id for p in two.problems]
        assert [p.spec_text for p in one.problems] == [p.spec_text for p in two.problems]


class TestBuildAndManifest:
    def build(self, tmp_path, name="t", sub="ds"):
        return build_dataset(
            name, ["builtin", "synthetic"], str(tmp_path / sub),
            synthetic_count=6, seed=0,
        )

    def test_build_writes_sealed_manifest(self, tmp_path):
        result = self.build(tmp_path)
        manifest = load_manifest(result.directory)
        assert manifest["schema"] == DATASET_SCHEMA
        assert manifest["counts"]["problems"] == len(result.records)
        assert manifest["counts"]["topologies_covered"] >= 6
        # every problem line is hash-manifested, every drop is counted
        assert len(manifest["problems"]) == len(result.records)
        derivation_drops = sum(manifest["drops"]["derivation"].values())
        assert derivation_drops == len(manifest["drop_records"])

    def test_build_is_deterministic(self, tmp_path):
        one = self.build(tmp_path, sub="one")
        two = self.build(tmp_path, sub="two")
        assert one.manifest["manifest_hash"] == two.manifest["manifest_hash"]
        bytes_one = (tmp_path / "one" / PROBLEMS_FILE).read_bytes()
        bytes_two = (tmp_path / "two" / PROBLEMS_FILE).read_bytes()
        assert bytes_one == bytes_two

    def test_verify_passes_then_detects_drift(self, tmp_path):
        result = self.build(tmp_path)
        assert verify_dataset(result.directory) == []
        path = os.path.join(result.directory, PROBLEMS_FILE)
        lines = open(path).read().splitlines()
        doc = json.loads(lines[0])
        doc["granularity"] = "rule"
        lines[0] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        findings = verify_dataset(result.directory)
        assert findings and "content hash" in findings[0]

    def test_verify_detects_manifest_tamper(self, tmp_path):
        result = self.build(tmp_path)
        mpath = os.path.join(result.directory, "manifest.json")
        manifest = json.load(open(mpath))
        manifest["counts"]["problems"] += 1
        json.dump(manifest, open(mpath, "w"))
        assert any("manifest_hash" in f for f in verify_dataset(result.directory))

    def test_list_datasets(self, tmp_path):
        self.build(tmp_path, name="a", sub="reg/a")
        self.build(tmp_path, name="b", sub="reg/b")
        rows = list_datasets(str(tmp_path / "reg"))
        assert [row["name"] for row in rows] == ["a", "b"]

    def test_records_round_trip_as_suite(self, tmp_path):
        result = self.build(tmp_path)
        loaded = load_dataset_records(result.directory)
        assert corpus_to_jsonl(loaded) == corpus_to_jsonl(result.records)
        via_suite = generate_corpus(f"dataset:{result.directory}")
        assert corpus_to_jsonl(via_suite) == corpus_to_jsonl(result.records)
        assert all(r.expected == "unknown" for r in loaded)


class TestCli:
    def test_build_verify_list(self, tmp_path, capsys):
        out = str(tmp_path / "ds")
        assert main([
            "dataset", "build", "--name", "t", "--out", out, "--quick",
            "--synthetic-count", "6",
        ]) == 0
        text = capsys.readouterr().out
        assert "manifest_hash" in text
        assert main(["dataset", "verify", out]) == 0
        assert "ok" in capsys.readouterr().out
        assert main(["dataset", "list", str(tmp_path)]) == 0
        assert "problems over" in capsys.readouterr().out

    def test_verify_fails_on_drift(self, tmp_path, capsys):
        out = str(tmp_path / "ds")
        assert main([
            "dataset", "build", "--out", out, "--quick",
            "--synthetic-count", "6", "--json",
        ]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["schema"] == DATASET_SCHEMA
        with open(os.path.join(out, PROBLEMS_FILE), "a") as handle:
            handle.write("{}\n")
        assert main(["dataset", "verify", out, "--json"]) == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is False and verdict["findings"]

    def test_batch_attaches_robustness_to_robust_rows(self, tmp_path, capsys):
        out = str(tmp_path / "ds")
        main([
            "dataset", "build", "--out", out, "--quick", "--synthetic-count", "4",
        ])
        capsys.readouterr()
        corpus_path = str(tmp_path / "corpus.jsonl")
        assert main([
            "corpus", "--suite", f"dataset:{out}", "-o", corpus_path,
        ]) == 0
        assert main(["batch", corpus_path, "--serial", "--no-plans"]) == 0
        rows = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        jobs = {j["id"]: j for j in (json.loads(l) for l in open(corpus_path))}
        for row in rows:
            expect_robust = (
                jobs[row["id"]]["meta"]["perturbation"] == "robust"
                and row["status"] == "done"
            )
            assert ("robustness" in row) == expect_robust
            if expect_robust:
                digest = row["robustness"]
                assert set(digest) >= {
                    "probes", "survival_rate", "fully_robust",
                    "violating_stages", "worst_link",
                }

    def test_check_robust_flag(self, tmp_path, capsys):
        problem_path = str(tmp_path / "p.json")
        assert main(["demo", "fig1-green"]) == 0
        with open(problem_path, "w") as handle:
            handle.write(capsys.readouterr().out)
        assert main(["check", problem_path, "--robust", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "robustness" in document
        assert document["robustness"]["probes"] >= 1
        assert main(["check", problem_path, "--robust"]) == 0
        assert "robustness:" in capsys.readouterr().out


class TestDocs:
    """The docs must cover the dataset surface — enforced, like repro-api/1."""

    REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    def read(self, *parts):
        return open(os.path.join(self.REPO, *parts)).read()

    def test_api_md_documents_the_manifest_schema(self):
        doc = self.read("docs", "API.md")
        assert DATASET_SCHEMA in doc
        for field_name in (
            "manifest_hash", "drop_records", "topology_hash",
            "topologies_ingested", "topologies_covered",
            "survival_rate", "worst_link",
        ):
            assert field_name in doc, f"docs/API.md does not mention {field_name}"
        for reason in (
            "duplicate_topology", "degenerate_topology", "unparseable_gml",
            "no_diamond", "template_inapplicable", "static_infeasible",
            "vacuous",
        ):
            assert reason in doc, f"docs/API.md does not list drop reason {reason}"

    def test_readme_has_dataset_quickstart(self):
        readme = self.read("README.md")
        assert "repro dataset build" in readme
        assert "dataset verify" in readme
        assert "dataset:" in readme  # datasets plug in as named suites
        assert "--robust" in readme
        assert "repro.datasets" in readme  # module map row

    def test_architecture_documents_the_build_flow(self):
        doc = self.read("docs", "ARCHITECTURE.md")
        assert "repro.datasets" in doc
        for stage in ("collect_sources", "classify_roles", "derive_problems",
                      "build_dataset"):
            assert stage in doc, f"docs/ARCHITECTURE.md missing stage {stage}"


class TestBenchIntegration:
    def test_bench_robust_rows_carry_summaries(self, tmp_path):
        from repro.bench.runner import run_suite

        build_dataset(
            "b", ["builtin"], str(tmp_path / "ds"), seed=0,
        )
        document = run_suite(
            f"dataset:{tmp_path / 'ds'}", quick=False, timeout=60.0
        )
        robust_rows = [
            row for row in document["scenarios"]
            if row["perturbation"] == "robust" and row["status"] == "done"
        ]
        assert robust_rows
        assert all("robustness" in row for row in robust_rows)
        totals = document["totals"]
        assert totals["robust_probed"] == len(robust_rows)
