"""Fleet tests: rendezvous routing, the coordinator's lease lifecycle,
runner integration over real HTTP, lease-loss recovery, and the loadtest
harness (repro.fleet driven through repro.service.server)."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import API_VERSION, LeaseCompletion
from repro.errors import FleetError, ParseError
from repro.fleet import FleetCoordinator, FleetWorker, rendezvous_owner
from repro.fleet.loadtest import run_loadtest
from repro.perf.memo import SharedVerdictMemo
from repro.service import (
    JobStatus,
    ReproClient,
    ReproServer,
    SynthesisOptions,
    SynthesisService,
)
from repro.service.jobs import SynthesisJob
from test_server import fig1_problem, normalized_plan, smoke_subset


def start_worker(url, worker_id, **kwargs):
    """A FleetWorker running on a daemon thread; returns (worker, thread)."""
    worker = FleetWorker(url, worker_id=worker_id, lease_wait=0.5, **kwargs)
    thread = threading.Thread(target=worker.run, name=worker_id, daemon=True)
    thread.start()
    return worker, thread


def stop_worker(worker, thread):
    worker.stop()
    thread.join(timeout=30)
    worker.close()


def lease_as(client, worker_id, attempts=100):
    """Long-poll the coordinator as ``worker_id`` until a grant arrives."""
    for _ in range(attempts):
        grants = client.fleet_lease(worker_id, wait=0.5)
        if grants:
            return grants
    raise AssertionError("no grant arrived")


@pytest.fixture()
def fleet_server():
    with ReproServer(port=0, fleet=True) as srv:
        yield srv


# ----------------------------------------------------------------------
# rendezvous (HRW) routing
# ----------------------------------------------------------------------
class TestRendezvous:
    def test_deterministic_and_member(self):
        workers = ["w1", "w2", "w3"]
        owner = rendezvous_owner("scope-a", workers)
        assert owner in workers
        for _ in range(3):
            assert rendezvous_owner("scope-a", workers) == owner
        # order of the worker set must not matter
        assert rendezvous_owner("scope-a", reversed(workers)) == owner

    def test_only_departed_workers_scopes_move(self):
        """The HRW property: removing one worker reassigns only the scopes
        it owned — every other scope keeps its owner."""
        workers = [f"w{i}" for i in range(5)]
        scopes = [f"scope-{i}" for i in range(64)]
        before = {scope: rendezvous_owner(scope, workers) for scope in scopes}
        assert len(set(before.values())) > 1, "need a spread to test stability"
        survivors = [w for w in workers if w != "w2"]
        for scope in scopes:
            after = rendezvous_owner(scope, survivors)
            if before[scope] != "w2":
                assert after == before[scope]
            else:
                assert after in survivors

    def test_empty_worker_set(self):
        assert rendezvous_owner("scope-a", []) is None


# ----------------------------------------------------------------------
# coordinator lease lifecycle (no HTTP)
# ----------------------------------------------------------------------
class TestCoordinatorLifecycle:
    def make_group(self):
        job = SynthesisJob(job_id="j1", problem=fig1_problem())
        return {(job.fingerprint, None): [job]}

    def run_coordinator(self, coordinator, groups):
        """Drive the group-runner contract on a thread, like the scheduler."""
        results = {}
        done = threading.Event()

        def scheduler():
            for key, payload in coordinator(groups):
                results[key] = payload
            done.set()

        thread = threading.Thread(target=scheduler, daemon=True)
        thread.start()
        return results, done, thread

    def test_expired_leases_requeue_then_error_after_max_attempts(self):
        coordinator = FleetCoordinator(
            SharedVerdictMemo(), lease_ttl=0.2, steal_after=0.0, max_attempts=2
        )
        groups = self.make_group()
        results, done, thread = self.run_coordinator(coordinator, groups)
        from repro.api import LeaseRequest

        seen_attempts = []
        for _ in range(2):  # lease, never complete, let it die
            grants = []
            deadline = time.monotonic() + 30
            while not grants and time.monotonic() < deadline:
                grants = coordinator.lease(
                    LeaseRequest(worker_id="flaky", wait=0.5)
                )
            assert grants, "coordinator stopped granting"
            seen_attempts.append(grants[0].attempt)
        assert done.wait(timeout=30), "group never settled"
        thread.join(timeout=5)
        assert seen_attempts == [1, 2]
        (payload,) = results.values()
        assert payload["status"] == "error"
        assert "expired" in payload["message"]
        assert coordinator.leases_expired_total == 2

    def test_close_settles_open_groups_as_errors(self):
        coordinator = FleetCoordinator(SharedVerdictMemo())
        results, done, thread = self.run_coordinator(coordinator, self.make_group())
        coordinator.close()
        assert done.wait(timeout=10)
        thread.join(timeout=5)
        (payload,) = results.values()
        assert payload["status"] == "error"
        assert "closed" in payload["message"]


# ----------------------------------------------------------------------
# runners over real HTTP
# ----------------------------------------------------------------------
class TestFleetIntegration:
    def test_two_runner_fleet_matches_in_process_plans(self, fleet_server):
        """Acceptance: a 2-worker fleet settles the smoke subset with plans
        identical to the in-process service."""
        records = smoke_subset(6)
        local = SynthesisService(workers=0)
        for record in records:
            local.submit(
                record.problem,
                job_id=record.scenario_id,
                options=SynthesisOptions(granularity=record.granularity),
            )
        local_results = {res.job_id: res for res in local.stream()}

        workers = [
            start_worker(fleet_server.url, f"runner-{i}") for i in range(2)
        ]
        try:
            client = ReproClient(fleet_server.url)
            for record in records:
                client.submit(
                    record.problem,
                    job_id=record.scenario_id,
                    options=SynthesisOptions(granularity=record.granularity),
                )
            remote_results = {res.job_id: res for res in client.stream()}
        finally:
            for worker, thread in workers:
                stop_worker(worker, thread)

        assert set(remote_results) == set(local_results)
        for job_id, local_res in local_results.items():
            remote_res = remote_results[job_id]
            assert remote_res.status is JobStatus.DONE, remote_res.message
            assert remote_res.fingerprint == local_res.fingerprint
            assert normalized_plan(remote_res.plan) == normalized_plan(
                local_res.plan
            )

    def test_fleet_gauges_in_metrics_and_healthz(self, fleet_server):
        worker, thread = start_worker(fleet_server.url, "gauge-runner")
        try:
            client = ReproClient(fleet_server.url)
            view = client.submit(fig1_problem())
            assert client.result(view.job_id, timeout=60).status is JobStatus.DONE
            fleet = client.metrics_dict()["gauges"]["fleet"]
            assert fleet["workers_connected"] >= 1
            assert fleet["leases_granted_total"] >= 1
            assert "leases_outstanding" in fleet
            assert "leases_expired_total" in fleet
            runner = fleet["workers"]["gauge-runner"]
            assert runner["completed"] >= 1
            assert runner["last_heartbeat_age_s"] >= 0.0
        finally:
            stop_worker(worker, thread)

    def test_fleet_endpoints_404_off_fleet_mode(self):
        with ReproServer(port=0, workers=0) as srv:
            client = ReproClient(srv.url)
            with pytest.raises(FleetError, match="not a fleet coordinator"):
                client.fleet_lease("wannabe")
            with pytest.raises(FleetError):
                client.fleet_heartbeat("wannabe", ("lease-1",))

    def test_heartbeat_names_unknown_leases(self, fleet_server):
        client = ReproClient(fleet_server.url)
        reply = client.fleet_heartbeat("runner-x", ("lease-404",))
        assert reply["unknown"] == ["lease-404"]

    def test_worker_memo_gossip_reaches_the_pool(self, fleet_server):
        """A runner's learned verdicts must land in the coordinator's memo
        stats via the completion merge."""
        worker, thread = start_worker(fleet_server.url, "gossip-runner")
        try:
            client = ReproClient(fleet_server.url)
            view = client.submit(fig1_problem())
            assert client.result(view.job_id, timeout=60).status is JobStatus.DONE
            metrics = client.metrics_dict()
            # the runner's drained deltas merged into the coordinator pool:
            # its scopes and merge counter are visible server-side
            assert metrics["verdict_memo"]["merged"] > 0
            assert metrics["gauges"]["memo_scopes"] > 0
        finally:
            stop_worker(worker, thread)


# ----------------------------------------------------------------------
# lease-loss recovery
# ----------------------------------------------------------------------
class TestLeaseRecovery:
    @pytest.fixture()
    def impatient_server(self):
        """A coordinator that gives up on silent runners fast."""
        with ReproServer(
            port=0,
            fleet=True,
            fleet_options={"lease_ttl": 0.6, "steal_after": 0.0},
        ) as srv:
            yield srv

    def test_killed_worker_mid_lease_relleased_identical_plan(
        self, impatient_server
    ):
        """Acceptance: a worker that dies holding a lease never strands the
        job — it is re-leased and settles with the identical plan."""
        problem = fig1_problem()
        local = SynthesisService(workers=0)
        local.submit(problem, job_id="victim")
        (local_res,) = local.stream()

        client = ReproClient(impatient_server.url)
        client.submit(problem, job_id="victim")
        # the doomed runner takes the lease and then crashes: no heartbeat,
        # no completion, connection gone
        doomed = ReproClient(impatient_server.url)
        grants = lease_as(doomed, "doomed")
        assert grants[0].attempt == 1
        del doomed

        survivor, thread = start_worker(impatient_server.url, "survivor")
        try:
            result = client.result("victim", timeout=60)
        finally:
            stop_worker(survivor, thread)
        assert result.status is JobStatus.DONE
        assert normalized_plan(result.plan) == normalized_plan(local_res.plan)
        fleet = client.metrics_dict()["gauges"]["fleet"]
        assert fleet["leases_expired_total"] >= 1
        assert fleet["workers"]["survivor"]["completed"] >= 1

    def test_malformed_completion_is_400_and_group_recovers(
        self, impatient_server
    ):
        client = ReproClient(impatient_server.url)
        client.submit(fig1_problem(), job_id="mangled")
        saboteur = ReproClient(impatient_server.url)
        grants = lease_as(saboteur, "saboteur")
        # "done" without a plan is a malformed completion: 400, not accepted
        with pytest.raises(ParseError):
            saboteur.fleet_complete(
                LeaseCompletion(
                    lease_id=grants[0].lease_id,
                    worker_id="saboteur",
                    payload={"status": "done", "seconds": 0.0},
                )
            )
        with pytest.raises(ParseError):
            saboteur.fleet_complete(
                LeaseCompletion(
                    lease_id=grants[0].lease_id,
                    worker_id="saboteur",
                    payload={"status": "sideways", "seconds": 0.0},
                )
            )
        # the lease expires like any other loss; a healthy runner finishes
        survivor, thread = start_worker(impatient_server.url, "healthy")
        try:
            result = client.result("mangled", timeout=60)
        finally:
            stop_worker(survivor, thread)
        assert result.status is JobStatus.DONE

    def test_completion_for_unknown_lease_is_not_accepted(self, fleet_server):
        client = ReproClient(fleet_server.url)
        reply = client.fleet_complete(
            LeaseCompletion(
                lease_id="lease-9999",
                worker_id="ghost",
                payload={"status": "infeasible", "seconds": 0.0},
            )
        )
        assert reply["accepted"] is False
        assert reply["known"] is False


# ----------------------------------------------------------------------
# fleet wire documents over raw HTTP
# ----------------------------------------------------------------------
class TestFleetProtocol:
    def post(self, server, path, body: bytes):
        request = urllib.request.Request(
            server.url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return urllib.request.urlopen(request)

    def test_lease_document_validation(self, fleet_server):
        for bad in (
            {"api": API_VERSION},  # no worker id
            {"api": API_VERSION, "worker": "w", "max_groups": 0},
            {"api": API_VERSION, "worker": "w", "wait": -1},
            {"api": API_VERSION, "worker": "w", "wait": float("nan")},
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.post(
                    fleet_server, "/v1/fleet/lease", json.dumps(bad).encode()
                )
            assert excinfo.value.code == 400
            assert (
                json.loads(excinfo.value.read())["error"]["code"] == "parse"
            )

    def test_empty_lease_reply_when_no_work(self, fleet_server):
        reply = self.post(
            fleet_server,
            "/v1/fleet/lease",
            json.dumps({"api": API_VERSION, "worker": "idle"}).encode(),
        )
        document = json.loads(reply.read())
        assert document["api"] == API_VERSION
        assert document["leases"] == []


# ----------------------------------------------------------------------
# the plan-cache gate (use_plan_cache)
# ----------------------------------------------------------------------
class TestPlanCacheGate:
    def test_use_plan_cache_false_forces_resynthesis(self):
        service = SynthesisService(workers=0)
        options = SynthesisOptions(use_plan_cache=False)
        first = service.submit(fig1_problem(), options=options)
        second = service.submit(fig1_problem(), options=options)
        results = {res.job_id: res for res in service.stream()}
        assert results[first.job_id].status is JobStatus.DONE
        repeat = results[second.job_id]
        assert repeat.status is JobStatus.DONE
        # without the gate the repeat would be served from the plan cache
        assert not repeat.cached

    def test_gate_is_not_identity(self):
        on = SynthesisJob(
            job_id="a", problem=fig1_problem(),
            options=SynthesisOptions(use_plan_cache=True),
        )
        off = SynthesisJob(
            job_id="b", problem=fig1_problem(),
            options=SynthesisOptions(use_plan_cache=False),
        )
        assert on.fingerprint == off.fingerprint


# ----------------------------------------------------------------------
# the loadtest harness
# ----------------------------------------------------------------------
class TestLoadtest:
    def test_report_schema_and_warm_memo(self):
        report = run_loadtest(
            suite="smoke", clients=3, rounds=2, fleet_workers=1, max_jobs=6
        )
        assert report["schema"] == "repro-loadtest/1"
        assert report["ok"], report["failures"]
        assert report["self_hosted"] is True
        assert len(report["rounds"]) == 2
        for entry in report["rounds"]:
            assert entry["completed"] == report["jobs_per_round"]
            for key in (
                "latency_p50_s",
                "latency_p99_s",
                "throughput_jobs_per_s",
                "memo",
                "plan_cache",
            ):
                assert key in entry
        cold, warm = report["rounds"]
        # acceptance: gossip demonstrably working — the repeated round's
        # memo hit rate beats the cold one's
        assert warm["memo"]["hit_rate"] > cold["memo"]["hit_rate"]
        assert report["fleet"]["per_worker"]["lt-worker-1"]["completed"] > 0

    def test_rejects_fleet_workers_with_external_server(self):
        from repro.errors import ReproError

        with ReproServer(port=0, workers=0) as srv:
            with pytest.raises(ReproError, match="self-hosted"):
                run_loadtest(
                    server_url=srv.url, fleet_workers=2, max_jobs=1, rounds=1
                )
