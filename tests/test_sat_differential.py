"""Randomized differential test: CDCL solver vs brute-force enumeration.

Small random CNFs (≤8 variables, so ≤256 assignments) are decided both by
:class:`repro.sat.solver.SatSolver` and by exhaustive enumeration; every
divergence is a solver soundness bug.  The instances are generated from
explicit seeds — a failure reproduces from the seed in the assertion
message, never from a lost RNG state.

Covers the incremental surface too: clauses added *between* ``solve()``
calls (learned clauses and saved phases from earlier calls must not leak
wrong answers into later ones) and assumption solving, where an
UNSAT-under-assumptions answer must ship a valid core — a subset of the
assumptions that brute-force confirms is jointly inconsistent with the
formula.
"""

import itertools
import random
from typing import Dict, List, Sequence

from repro.sat.solver import SatSolver

MAX_VARS = 8


def _random_cnf(rng: random.Random, *, num_vars: int, num_clauses: int):
    """A random CNF: clause width 1-3, no tautological clauses."""
    clauses: List[List[int]] = []
    while len(clauses) < num_clauses:
        width = rng.randint(1, 3)
        variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clause = [var if rng.random() < 0.5 else -var for var in variables]
        clauses.append(clause)
    return clauses


def _brute_force_sat(
    clauses: Sequence[Sequence[int]], num_vars: int
) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {var: bits[var - 1] for var in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def _model_satisfies(
    clauses: Sequence[Sequence[int]], model: Dict[int, bool]
) -> bool:
    return all(
        any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
        for clause in clauses
    )


class TestDifferentialSolve:
    def test_verdicts_match_brute_force(self):
        for seed in range(200):
            rng = random.Random(seed)
            num_vars = rng.randint(2, MAX_VARS)
            # ~4.3 clauses/var straddles the random-3-SAT phase transition,
            # so both verdicts appear often
            num_clauses = rng.randint(1, num_vars * 5)
            clauses = _random_cnf(rng, num_vars=num_vars, num_clauses=num_clauses)
            expected = _brute_force_sat(clauses, num_vars)

            solver = SatSolver()
            trivially_sat = True
            for clause in clauses:
                trivially_sat = solver.add_clause(clause) and trivially_sat
            verdict = solver.solve()
            assert verdict == expected, (seed, clauses)
            if not trivially_sat:
                assert not expected, (seed, clauses)
            if verdict:
                assert _model_satisfies(clauses, solver.model()), (
                    seed,
                    clauses,
                    solver.model(),
                )

    def test_incremental_clause_adds_between_solves(self):
        """One long-lived solver vs a fresh solver + brute force per prefix."""
        for seed in range(60):
            rng = random.Random(1000 + seed)
            num_vars = rng.randint(3, MAX_VARS)
            clauses = _random_cnf(
                rng, num_vars=num_vars, num_clauses=num_vars * 5
            )
            incremental = SatSolver()
            prefix: List[List[int]] = []
            position = 0
            while position < len(clauses):
                chunk = clauses[position : position + rng.randint(1, 4)]
                position += len(chunk)
                prefix.extend(chunk)
                for clause in chunk:
                    incremental.add_clause(clause)
                expected = _brute_force_sat(prefix, num_vars)
                assert incremental.solve() == expected, (seed, prefix)

                fresh = SatSolver()
                for clause in prefix:
                    fresh.add_clause(clause)
                assert fresh.solve() == expected, (seed, prefix)
                if not expected:
                    break  # adding clauses can never revive an UNSAT formula

    def test_unsat_stays_unsat_after_more_clauses(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.solve()
        solver.add_clause([2, 3])
        assert not solver.solve()


class TestDifferentialAssumptions:
    def test_assumption_verdicts_and_cores(self):
        cores_checked = 0
        for seed in range(200):
            rng = random.Random(2000 + seed)
            num_vars = rng.randint(2, MAX_VARS)
            clauses = _random_cnf(
                rng, num_vars=num_vars, num_clauses=num_vars * 3
            )
            assumed_vars = rng.sample(
                range(1, num_vars + 1), rng.randint(1, num_vars)
            )
            assumptions = [
                var if rng.random() < 0.5 else -var for var in assumed_vars
            ]
            # assumptions are exactly extra unit clauses, semantically
            expected = _brute_force_sat(
                list(clauses) + [[lit] for lit in assumptions], num_vars
            )

            solver = SatSolver()
            for clause in clauses:
                solver.add_clause(clause)
            verdict = solver.solve(assumptions)
            assert verdict == expected, (seed, clauses, assumptions)

            if verdict:
                model = solver.model()
                assert _model_satisfies(clauses, model), (seed, clauses)
                for lit in assumptions:
                    assert model.get(abs(lit)) == (lit > 0), (seed, assumptions)
            else:
                core = solver.last_core  # before solve() resets it
                if not solver.solve():
                    continue  # the formula alone is UNSAT; no core promised
                # the formula alone is SAT, so the assumptions did it
                assert core, (seed, clauses, assumptions)
                assert set(core) <= set(assumptions), (seed, core, assumptions)
                assert not _brute_force_sat(
                    list(clauses) + [[lit] for lit in core], num_vars
                ), (seed, clauses, core)
                cores_checked += 1
        assert cores_checked >= 10  # the sweep genuinely exercised cores

    def test_solver_reusable_after_assumption_unsat(self):
        """Failed assumptions must not poison later assumption-free solves."""
        for seed in range(40):
            rng = random.Random(3000 + seed)
            num_vars = rng.randint(2, MAX_VARS)
            clauses = _random_cnf(
                rng, num_vars=num_vars, num_clauses=num_vars * 2
            )
            expected = _brute_force_sat(clauses, num_vars)
            solver = SatSolver()
            for clause in clauses:
                solver.add_clause(clause)
            for _ in range(3):
                variable = rng.randint(1, num_vars)
                solver.solve([variable])
                solver.solve([-variable])
                assert solver.solve() == expected, (seed, clauses)
