"""Tests for the topology graph."""

import pytest

from repro.errors import TopologyError
from repro.net.topology import Link, Topology
from repro.topo import mini_datacenter


def line_topology():
    """H1 - S1 - S2 - S3 - H2"""
    topo = Topology()
    topo.add_switches(["S1", "S2", "S3"])
    topo.add_hosts(["H1", "H2"])
    topo.add_link("H1", "S1")
    topo.add_link("S1", "S2")
    topo.add_link("S2", "S3")
    topo.add_link("S3", "H2")
    return topo


class TestConstruction:
    def test_node_kinds(self):
        topo = line_topology()
        assert topo.is_switch("S1")
        assert topo.is_host("H1")
        assert not topo.is_switch("H1")
        assert topo.has_node("S2")
        assert "S2" in topo
        assert "nope" not in topo

    def test_duplicate_kind_rejected(self):
        topo = Topology()
        topo.add_switch("X")
        with pytest.raises(TopologyError):
            topo.add_host("X")

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_switch("X")
        with pytest.raises(TopologyError):
            topo.add_link("X", "X")

    def test_duplicate_link_rejected(self):
        topo = line_topology()
        with pytest.raises(TopologyError):
            topo.add_link("S1", "S2")

    def test_unknown_node_rejected(self):
        topo = Topology()
        topo.add_switch("A")
        with pytest.raises(TopologyError):
            topo.add_link("A", "B")

    def test_explicit_ports(self):
        topo = Topology()
        topo.add_switches(["A", "B"])
        link = topo.add_link("A", "B", port_a=5, port_b=9)
        assert link.port_a == 5
        assert topo.peer("A", 5) == ("B", 9)

    def test_port_collision_rejected(self):
        topo = Topology()
        topo.add_switches(["A", "B", "C"])
        topo.add_link("A", "B", port_a=1)
        with pytest.raises(TopologyError):
            topo.add_link("A", "C", port_a=1)


class TestQueries:
    def test_peer_and_port_to(self):
        topo = line_topology()
        port = topo.port_to("S1", "S2")
        assert topo.peer("S1", port) == ("S2", topo.port_to("S2", "S1"))
        with pytest.raises(TopologyError):
            topo.port_to("S1", "S3")

    def test_neighbors(self):
        topo = line_topology()
        assert set(topo.neighbors("S2")) == {"S1", "S3"}

    def test_host_ports_and_attachment(self):
        topo = line_topology()
        assert topo.attachment("H1")[0] == "S1"
        ports = topo.host_ports("S1")
        assert len(ports) == 1 and ports[0][1] == "H1"

    def test_unattached_host(self):
        topo = Topology()
        topo.add_host("H")
        with pytest.raises(TopologyError):
            topo.attachment("H")

    def test_link_other(self):
        link = Link("A", 1, "B", 2)
        assert link.other("A") == ("B", 2)
        assert link.other("B") == ("A", 1)
        with pytest.raises(TopologyError):
            link.other("C")


class TestPaths:
    def test_shortest_path_line(self):
        topo = line_topology()
        assert topo.shortest_path("H1", "H2") == ["H1", "S1", "S2", "S3", "H2"]

    def test_shortest_path_same_node(self):
        topo = line_topology()
        assert topo.shortest_path("S1", "S1") == ["S1"]

    def test_no_path(self):
        topo = Topology()
        topo.add_switches(["A", "B"])
        assert topo.shortest_path("A", "B") is None

    def test_path_does_not_route_through_hosts(self):
        # H in the middle should not be used as transit
        topo = Topology()
        topo.add_switches(["A", "B"])
        topo.add_host("H")
        topo.add_link("A", "H")
        topo.add_link("H", "B")
        assert topo.shortest_path("A", "B") is None

    def test_disjoint_paths_in_datacenter(self):
        topo = mini_datacenter()
        paths = topo.disjoint_paths("H1", "H3")
        assert len(paths) == 2
        interior0 = set(paths[0][2:-2])
        interior1 = set(paths[1][2:-2])
        assert not (interior0 & interior1)

    def test_disjoint_paths_on_line_gives_one(self):
        topo = line_topology()
        assert len(topo.disjoint_paths("H1", "H2")) == 1
