"""Tests for the NetKAT-style policy language and its flow-table compiler.

The central property: for every policy and every located packet, processing
the packet through the *compiled table* produces exactly the multiset of
outputs the *reference interpreter* produces.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.frenetic.compiler import compile_network, compile_policy
from repro.frenetic.policy import PFalse, PTrue, drop, evaluate_policy, filter_, fwd, identity, mod
from repro.frenetic.policy import test as nk_test  # avoid pytest collection
from repro.frenetic.policy import test_port as nk_test_port
from repro.net.fields import Packet, TrafficClass
from repro.net.config import Configuration
from repro.topo import mini_datacenter


class TestInterpreter:
    def test_fwd_outputs(self):
        outs = evaluate_policy(fwd(2), Packet.make(dst="H3"), 1)
        assert outs == [(Packet.make(dst="H3"), 2)]

    def test_filter_blocks(self):
        policy = filter_(nk_test("dst", "H3")) >> fwd(2)
        assert evaluate_policy(policy, Packet.make(dst="H4"), 1) == []
        assert len(evaluate_policy(policy, Packet.make(dst="H3"), 1)) == 1

    def test_no_forward_means_no_output(self):
        assert evaluate_policy(identity, Packet.make(dst="H3"), 1) == []
        assert evaluate_policy(drop, Packet.make(dst="H3"), 1) == []

    def test_union_multicasts(self):
        policy = fwd(2) + fwd(3)
        outs = evaluate_policy(policy, Packet.make(), 1)
        assert sorted(p for _, p in outs) == [2, 3]

    def test_mod_then_nk_test(self):
        policy = mod("dst", "H4") >> filter_(nk_test("dst", "H4")) >> fwd(9)
        outs = evaluate_policy(policy, Packet.make(dst="H3"), 1)
        assert outs[0][0].get("dst") == "H4"
        assert outs[0][1] == 9

    def test_nk_test_port(self):
        policy = filter_(nk_test_port(1)) >> fwd(2)
        assert evaluate_policy(policy, Packet.make(), 1) != []
        assert evaluate_policy(policy, Packet.make(), 3) == []

    def test_negation(self):
        policy = filter_(~nk_test("dst", "H3")) >> fwd(2)
        assert evaluate_policy(policy, Packet.make(dst="H3"), 1) == []
        assert evaluate_policy(policy, Packet.make(dst="H4"), 1) != []

    def test_port_test_after_fwd_sees_new_port(self):
        policy = fwd(7) >> filter_(nk_test_port(7)) >> fwd(8)
        outs = evaluate_policy(policy, Packet.make(), 1)
        assert [p for _, p in outs] == [8]


class TestCompiler:
    def check_equivalence(self, policy, packets_ports):
        table = compile_policy(policy)
        for packet, port in packets_ports:
            expected = Counter(evaluate_policy(policy, packet, port))
            actual = Counter(table.process(packet, port))
            assert actual == expected, f"{policy} on {packet}@{port}: {table}"

    def test_basic_forwarding(self):
        policy = filter_(nk_test("dst", "H3")) >> fwd(2)
        self.check_equivalence(
            policy,
            [(Packet.make(dst="H3"), 1), (Packet.make(dst="H4"), 1)],
        )

    def test_negation_compiles_to_shadowing(self):
        policy = filter_(~nk_test("dst", "H3")) >> fwd(2)
        self.check_equivalence(
            policy,
            [(Packet.make(dst="H3"), 1), (Packet.make(dst="H4"), 5)],
        )

    def test_union_and_rewrite(self):
        policy = (filter_(nk_test("dst", "H3")) >> fwd(2)) + (
            mod("dst", "H9") >> fwd(3)
        )
        self.check_equivalence(
            policy,
            [(Packet.make(dst="H3"), 1), (Packet.make(dst="H0"), 1)],
        )

    def test_port_sensitive_policy(self):
        policy = (filter_(nk_test_port(1)) >> fwd(2)) + (filter_(nk_test_port(2)) >> fwd(1))
        self.check_equivalence(
            policy,
            [(Packet.make(), 1), (Packet.make(), 2), (Packet.make(), 3)],
        )

    def test_drop_policy_compiles_to_empty_table(self):
        assert len(compile_policy(drop)) == 0
        assert len(compile_policy(identity)) == 0  # no forward -> no output

    def test_compile_network(self):
        config = compile_network(
            {
                "S1": filter_(nk_test("dst", "H3")) >> fwd(2),
                "S2": fwd(1),
            }
        )
        assert isinstance(config, Configuration)
        assert config.rule_count("S1") >= 1

    def test_cell_explosion_guard(self):
        policy = identity
        for i in range(14):
            policy = policy + (filter_(nk_test(f"f{i}", "v")) >> fwd(i))
        with pytest.raises(ConfigurationError):
            compile_policy(policy)

    def test_compiled_routing_works_with_synthesis(self):
        """Compiled policies drop into the synthesizer unchanged."""
        from repro import UpdateSynthesizer, specs

        topo = mini_datacenter()
        tc = TrafficClass.make("f", src="H1", dst="H3")

        def route(path):
            return compile_network(
                {
                    sw: filter_(nk_test("dst", "H3")) >> fwd(topo.port_to(sw, nxt))
                    for sw, nxt in zip(path[1:-1], path[2:])
                }
            )

        init = route(["H1", "T1", "A1", "C1", "A3", "T3", "H3"])
        final = route(["H1", "T1", "A1", "C2", "A3", "T3", "H3"])
        plan = UpdateSynthesizer(topo).synthesize(
            init, final, specs.reachability(tc, "H3"), {tc: ["H1"]}
        )
        order = [c.switch for c in plan.updates()]
        assert order.index("C2") < order.index("A1")


# ----------------------------------------------------------------------
# property-based compiler correctness
# ----------------------------------------------------------------------
FIELDS = ["dst", "typ"]
VALUES = ["a", "b"]
PORTS = [1, 2]


@st.composite
def preds(draw, depth=2):
    if depth == 0:
        kind = draw(st.sampled_from(["test", "port", "true", "false"]))
        if kind == "test":
            return nk_test(draw(st.sampled_from(FIELDS)), draw(st.sampled_from(VALUES)))
        if kind == "port":
            return nk_test_port(draw(st.sampled_from(PORTS)))
        return PTrue() if kind == "true" else PFalse()
    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return draw(preds(depth=0))
    if kind == "not":
        return ~draw(preds(depth=depth - 1))
    left, right = draw(preds(depth=depth - 1)), draw(preds(depth=depth - 1))
    return (left & right) if kind == "and" else (left | right)


@st.composite
def policies(draw, depth=3):
    if depth == 0:
        kind = draw(st.sampled_from(["filter", "mod", "fwd"]))
        if kind == "filter":
            return filter_(draw(preds(depth=1)))
        if kind == "mod":
            return mod(draw(st.sampled_from(FIELDS)), draw(st.sampled_from(VALUES)))
        return fwd(draw(st.sampled_from(PORTS)))
    kind = draw(st.sampled_from(["leaf", "union", "seq"]))
    if kind == "leaf":
        return draw(policies(depth=0))
    left, right = draw(policies(depth=depth - 1)), draw(policies(depth=depth - 1))
    return (left + right) if kind == "union" else (left >> right)


packets_st = st.fixed_dictionaries(
    {"dst": st.sampled_from(VALUES + ["other"]), "typ": st.sampled_from(VALUES + ["z"])}
).map(lambda fields: Packet.make(**fields))


@given(policy=policies(), packet=packets_st, port=st.sampled_from(PORTS + [9]))
@settings(max_examples=300, deadline=None)
def test_compiled_table_matches_interpreter(policy, packet, port):
    from hypothesis import assume

    try:
        table = compile_policy(policy)
    except ConfigurationError:
        # multicasts that would need to restore unknown field values are
        # honestly rejected (they need OpenFlow group tables)
        assume(False)
        return
    expected = Counter(evaluate_policy(policy, packet, port))
    actual = Counter(table.process(packet, port))
    assert actual == expected
