"""Tests for the scenario corpus: determinism, coverage, round-trips."""

import json

import pytest

from repro.cli import _load_batch_jobs
from repro.errors import ReproError
from repro.net.serialize import problem_from_dict, problem_to_dict
from repro.scenarios import (
    SUITES,
    apply_template,
    corpus_summary,
    corpus_to_jsonl,
    generate_corpus,
    get_suite,
    write_corpus,
)
from repro.scenarios.builders import family_scenarios, scenario_for_prop
from repro.topo import chained_diamond, double_diamond, ring_diamond


@pytest.fixture(scope="module")
def smoke_records():
    return generate_corpus("smoke", quick=True, base_seed=0)


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(self, smoke_records):
        first = corpus_to_jsonl(smoke_records)
        second = corpus_to_jsonl(generate_corpus("smoke", quick=True, base_seed=0))
        assert first == second

    def test_same_seed_byte_identical_on_disk(self, tmp_path, smoke_records):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_corpus(smoke_records, str(a))
        write_corpus(generate_corpus("smoke", quick=True, base_seed=0), str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_distinct_seeds_distinct_problems(self, smoke_records):
        other = generate_corpus("smoke", quick=True, base_seed=99)
        assert corpus_to_jsonl(smoke_records) != corpus_to_jsonl(other)
        # seed-sensitive families actually pick different diamonds
        by_id = {r.scenario_id: r for r in smoke_records}
        changed = 0
        for record in other:
            twin = by_id.get(record.scenario_id)
            if twin is None:
                continue
            if problem_to_dict(record.problem) != problem_to_dict(twin.problem):
                changed += 1
        assert changed >= 5

    def test_full_suite_sizes_are_superset_shape(self):
        quick = corpus_summary(generate_corpus("smoke", quick=True))
        full = corpus_summary(generate_corpus("smoke", quick=False))
        assert full["scenarios"] >= quick["scenarios"]


class TestCoverage:
    def test_smoke_quick_meets_corpus_contract(self, smoke_records):
        summary = corpus_summary(smoke_records)
        assert summary["scenarios"] >= 20
        assert len(summary["families"]) >= 3
        assert len(summary["templates"]) >= 3
        assert "linkfail" in summary["perturbations"]
        assert "rule" in summary["granularities"]

    def test_all_registered_suites_generate(self):
        for name in SUITES:
            records = generate_corpus(name, quick=True)
            assert records, f"suite {name} generated no scenarios"
            assert len({r.scenario_id for r in records}) == len(records)

    def test_unknown_suite_and_template_raise(self):
        with pytest.raises(ReproError):
            get_suite("nope")
        with pytest.raises(ReproError):
            apply_template("nope", ring_diamond(8, seed=1))

    def test_expected_verdicts_cover_both(self, smoke_records):
        expected = {r.expected for r in smoke_records}
        assert "feasible" in expected and "infeasible" in expected


class TestRoundTrips:
    def test_problem_roundtrip_through_serializer(self, smoke_records):
        for record in smoke_records:
            doc = record.to_jobs_dict()
            clone = problem_from_dict(doc)
            assert problem_to_dict(clone) == problem_to_dict(record.problem), (
                record.scenario_id
            )

    def test_jsonl_parses_through_batch_loader(self, tmp_path, smoke_records):
        path = tmp_path / "corpus.jsonl"
        write_corpus(smoke_records, str(path))
        jobs = _load_batch_jobs(str(path))
        assert len(jobs) == len(smoke_records)
        by_id = {r.scenario_id: r for r in smoke_records}
        for job in jobs:
            record = by_id[job.job_id]
            assert job.timeout is None
            assert job.granularity == record.granularity
            assert job.patch is None
            assert problem_to_dict(job.problem) == problem_to_dict(record.problem)

    def test_jsonl_lines_carry_meta(self, smoke_records):
        for line in corpus_to_jsonl(smoke_records).splitlines():
            doc = json.loads(line)
            meta = doc["meta"]
            assert meta["schema"].startswith("repro-corpus/")
            assert meta["family"] in ("fattree", "zoo", "smallworld", "diamond")
            assert doc["granularity"] in ("switch", "rule")


class TestBuilders:
    def test_family_scenarios_matches_legacy_families(self):
        assert family_scenarios("fattree", (4,))
        assert family_scenarios("smallworld", (8,))
        assert len(family_scenarios("zoo", ())) >= 4
        with pytest.raises(ValueError):
            family_scenarios("nope", (4,))

    def test_scenario_for_prop_shapes(self):
        assert scenario_for_prop("reachability", 12).prop == "reachability"
        assert scenario_for_prop("chain", 20).prop == "chain"

    def test_diamond_scenarios_record_paths(self):
        for scenario in (
            ring_diamond(8, seed=1),
            chained_diamond(2, 2),
            double_diamond(8, seed=1),
        ):
            assert set(scenario.init_paths) == set(scenario.ingresses)
            for tc, path in scenario.init_paths.items():
                assert path[0] in scenario.ingresses[tc]
                assert scenario.final_paths[tc][-1] == path[-1]
