"""Tests for the model-checker backends, including cross-checker agreement.

The key correctness arguments:

* the labeling checkers agree with the *reference* trace semantics
  (enumerate all maximal Kripke paths, evaluate each with
  :mod:`repro.ltl.semantics`);
* the incremental checker agrees with the batch checker across arbitrary
  update/revert sequences (the paper's Theorem 3 / Corollary 1);
* the automaton checker agrees with the labeling checkers.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelCheckError
from repro.kripke.structure import KripkeStructure
from repro.ltl import specs
from repro.ltl.atoms import At, Dropped
from repro.ltl.semantics import evaluate
from repro.ltl.syntax import (
    And,
    FALSE,
    G,
    Next,
    NotProp,
    Or,
    Prop,
    Release,
    TRUE,
    Until,
)
from repro.mc import AutomatonChecker, BatchChecker, IncrementalChecker, make_checker
from repro.mc.netplumber import NetPlumberChecker
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
BLUE = ["H1", "T1", "A2", "C1", "A4", "T3", "H3"]


def structure(path=RED):
    topo = mini_datacenter()
    config = Configuration.from_paths(topo, {TC: path})
    return KripkeStructure(topo, config, {TC: ["H1"]})


def reference_verdict(ks, spec):
    """Ground truth: evaluate the spec on every maximal path."""
    return all(evaluate(spec, path) for path in ks.maximal_paths())


BACKENDS = ["incremental", "batch", "automaton"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestVerdicts:
    def test_reachability_holds(self, backend):
        ks = structure()
        checker = make_checker(backend, ks, specs.reachability(TC, "H3"))
        assert checker.full_check().ok

    def test_reachability_fails_on_empty_config(self, backend):
        topo = mini_datacenter()
        ks = KripkeStructure(topo, Configuration.empty(), {TC: ["H1"]})
        checker = make_checker(backend, ks, specs.reachability(TC, "H3"))
        assert not checker.full_check().ok

    def test_wrong_destination_fails(self, backend):
        ks = structure()
        checker = make_checker(backend, ks, specs.reachability(TC, "H4"))
        assert not checker.full_check().ok

    def test_waypoint(self, backend):
        ks = structure()
        assert make_checker(backend, ks, specs.waypoint(TC, "C1", "H3")).full_check().ok
        assert not make_checker(backend, ks, specs.waypoint(TC, "C2", "H3")).full_check().ok

    def test_service_chain(self, backend):
        ks = structure()
        good = specs.service_chain(TC, ["A1", "C1", "A3"], "H3")
        bad = specs.service_chain(TC, ["C1", "A1"], "H3")  # wrong order
        assert make_checker(backend, ks, good).full_check().ok
        assert not make_checker(backend, ks, bad).full_check().ok

    def test_isolation(self, backend):
        ks = structure()
        assert make_checker(backend, ks, specs.isolation(TC, "C2")).full_check().ok
        assert not make_checker(backend, ks, specs.isolation(TC, "C1")).full_check().ok

    def test_blackhole_freedom(self, backend):
        ks = structure()
        assert make_checker(backend, ks, specs.blackhole_freedom(TC)).full_check().ok
        topo = mini_datacenter()
        ks2 = KripkeStructure(topo, Configuration.empty(), {TC: ["H1"]})
        assert not make_checker(backend, ks2, specs.blackhole_freedom(TC)).full_check().ok


class TestCounterexamples:
    @pytest.mark.parametrize("backend", ["incremental", "batch"])
    def test_counterexample_is_violating_trace(self, backend):
        topo = mini_datacenter()
        ks = KripkeStructure(topo, Configuration.empty(), {TC: ["H1"]})
        spec = specs.reachability(TC, "H3")
        result = make_checker(backend, ks, spec).full_check()
        assert not result.ok
        assert result.counterexample
        assert not evaluate(spec, result.counterexample)

    def test_automaton_counterexample(self):
        topo = mini_datacenter()
        ks = KripkeStructure(topo, Configuration.empty(), {TC: ["H1"]})
        result = AutomatonChecker(ks, specs.reachability(TC, "H3")).full_check()
        assert not result.ok
        assert result.counterexample


class TestIncrementalVsBatch:
    def test_update_sequence_agreement(self):
        topo = mini_datacenter()
        red = Configuration.from_paths(topo, {TC: RED})
        green = Configuration.from_paths(topo, {TC: GREEN})
        ks = KripkeStructure(topo, red, {TC: ["H1"]})
        spec = specs.reachability(TC, "H3")
        inc = IncrementalChecker(ks, spec)
        inc.full_check()
        rng = random.Random(7)
        switches = sorted(red.diff_switches(green))
        current = {sw: red.table(sw) for sw in switches}
        for _ in range(30):
            sw = rng.choice(switches)
            target = green.table(sw) if current[sw] == red.table(sw) else red.table(sw)
            current[sw] = target
            dirty = ks.update_switch(sw, target)
            incremental_result = inc.apply_update(dirty)
            batch_result = BatchChecker(ks, spec).full_check()
            assert incremental_result.ok == batch_result.ok

    def test_incremental_relabels_less_than_batch(self):
        topo = mini_datacenter()
        red = Configuration.from_paths(topo, {TC: RED})
        green = Configuration.from_paths(topo, {TC: GREEN})
        ks = KripkeStructure(topo, red, {TC: ["H1"]})
        spec = specs.reachability(TC, "H3")
        inc = IncrementalChecker(ks, spec)
        inc.full_check()
        baseline = inc.relabel_count
        dirty = ks.update_switch("C2", green.table("C2"))
        inc.apply_update(dirty)
        # updating an unreachable switch relabels nothing
        assert inc.relabel_count == baseline


class TestAutomatonAgreement:
    @pytest.mark.parametrize(
        "spec_factory",
        [
            lambda: specs.reachability(TC, "H3"),
            lambda: specs.waypoint(TC, "C1", "H3"),
            lambda: specs.isolation(TC, "C2"),
            lambda: specs.blackhole_freedom(TC),
            lambda: specs.service_chain(TC, ["A1", "C1"], "H3"),
        ],
    )
    @pytest.mark.parametrize("path", [RED, GREEN, BLUE])
    def test_agreement_on_paths(self, spec_factory, path):
        spec = spec_factory()
        ks1 = structure(path)
        ks2 = structure(path)
        assert (
            BatchChecker(ks1, spec).full_check().ok
            == AutomatonChecker(ks2, spec).full_check().ok
        )

    def test_agreement_matches_reference(self):
        for path in (RED, GREEN, BLUE):
            for spec in (
                specs.reachability(TC, "H3"),
                specs.waypoint(TC, "A1", "H3"),
                specs.isolation(TC, "A2"),
            ):
                ks = structure(path)
                expected = reference_verdict(ks, spec)
                assert BatchChecker(ks, spec).full_check().ok == expected
                ks2 = structure(path)
                assert AutomatonChecker(ks2, spec).full_check().ok == expected


class TestNetPlumberBackend:
    def test_reachability_agreement(self):
        spec = specs.reachability(TC, "H3")
        ks = structure()
        np = NetPlumberChecker(ks, spec)
        assert np.full_check().ok
        ks_bad = structure(GREEN)
        # remove C2's table: blackhole
        ks_bad.update_switch("C2", Configuration.empty().table("C2"))
        np_bad = NetPlumberChecker(ks_bad, spec)
        assert not np_bad.full_check().ok

    def test_waypoint_and_chain_policies(self):
        ks = structure()
        assert NetPlumberChecker(ks, specs.waypoint(TC, "C1", "H3")).full_check().ok
        assert (
            NetPlumberChecker(ks, specs.service_chain(TC, ["A1", "C1"], "H3"))
            .full_check()
            .ok
        )
        assert not (
            NetPlumberChecker(ks, specs.waypoint(TC, "C2", "H3")).full_check().ok
        )

    def test_isolation_policy(self):
        ks = structure()
        assert NetPlumberChecker(ks, specs.isolation(TC, "C2")).full_check().ok
        assert not NetPlumberChecker(ks, specs.isolation(TC, "C1")).full_check().ok

    def test_unsupported_formula_rejected(self):
        ks = structure()
        with pytest.raises(ModelCheckError):
            NetPlumberChecker(ks, Next(Prop(At("T1"))))

    def test_no_counterexamples(self):
        ks = structure()
        result = NetPlumberChecker(ks, specs.isolation(TC, "C1")).full_check()
        assert not result.ok
        assert result.counterexample is None


# ----------------------------------------------------------------------
# property-based: random formulas on a fixed structure agree with the
# reference path semantics for all labeling backends
# ----------------------------------------------------------------------
ATOMS = [At("T1"), At("A1"), At("C1"), At("C2"), At("A3"), At("T3"), At("H3"), Dropped()]


@st.composite
def nnf_formulas(draw, depth=2):
    if depth == 0:
        atom = draw(st.sampled_from(ATOMS))
        return draw(st.sampled_from([Prop(atom), NotProp(atom), TRUE, FALSE]))
    kind = draw(
        st.sampled_from(["leaf", "and", "or", "next", "until", "release"])
    )
    if kind == "leaf":
        return draw(nnf_formulas(depth=0))
    if kind == "next":
        return Next(draw(nnf_formulas(depth=depth - 1)))
    left = draw(nnf_formulas(depth=depth - 1))
    right = draw(nnf_formulas(depth=depth - 1))
    return {"and": And, "or": Or, "until": Until, "release": Release}[kind](left, right)


@given(spec=nnf_formulas(), path=st.sampled_from([RED, GREEN, BLUE]))
@settings(max_examples=150, deadline=None)
def test_labeling_matches_reference_semantics(spec, path):
    ks = structure(path)
    expected = reference_verdict(ks, spec)
    assert BatchChecker(ks, spec).full_check().ok == expected


@given(spec=nnf_formulas(), path=st.sampled_from([RED, GREEN, BLUE]))
@settings(max_examples=75, deadline=None)
def test_automaton_matches_reference_semantics(spec, path):
    ks = structure(path)
    expected = reference_verdict(ks, spec)
    assert AutomatonChecker(ks, spec).full_check().ok == expected
