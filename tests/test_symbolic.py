"""Tests for the symbolic (BDD) checker: agreement with the other backends."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kripke.structure import KripkeStructure
from repro.ltl import specs
from repro.ltl.atoms import At, Dropped
from repro.ltl.semantics import evaluate
from repro.ltl.syntax import (
    And,
    FALSE,
    Next,
    NotProp,
    Or,
    Prop,
    Release,
    TRUE,
    Until,
)
from repro.mc import BatchChecker, make_checker
from repro.mc.symbolic import SymbolicChecker
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.synthesis import order_update
from repro.topo import mini_datacenter, ring_diamond

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
BLUE = ["H1", "T1", "A2", "C1", "A4", "T3", "H3"]


def structure(path=RED):
    topo = mini_datacenter()
    config = Configuration.from_paths(topo, {TC: path})
    return KripkeStructure(topo, config, {TC: ["H1"]})


class TestVerdicts:
    @pytest.mark.parametrize(
        "spec_factory,expected",
        [
            (lambda: specs.reachability(TC, "H3"), True),
            (lambda: specs.reachability(TC, "H4"), False),
            (lambda: specs.waypoint(TC, "C1", "H3"), True),
            (lambda: specs.waypoint(TC, "C2", "H3"), False),
            (lambda: specs.isolation(TC, "C2"), True),
            (lambda: specs.isolation(TC, "C1"), False),
            (lambda: specs.blackhole_freedom(TC), True),
            (lambda: specs.service_chain(TC, ["A1", "C1", "A3"], "H3"), True),
            (lambda: specs.service_chain(TC, ["C1", "A1"], "H3"), False),
        ],
    )
    def test_known_properties(self, spec_factory, expected):
        checker = SymbolicChecker(structure(), spec_factory())
        assert checker.full_check().ok == expected

    def test_counterexample_violates_spec(self):
        topo = mini_datacenter()
        ks = KripkeStructure(topo, Configuration.empty(), {TC: ["H1"]})
        spec = specs.reachability(TC, "H3")
        result = SymbolicChecker(ks, spec).full_check()
        assert not result.ok
        assert result.counterexample
        assert not evaluate(spec, result.counterexample)

    def test_make_checker_aliases(self):
        ks = structure()
        assert make_checker("symbolic", ks, TRUE).name == "symbolic"
        assert make_checker("nusmv", ks, TRUE).name == "symbolic"

    def test_synthesis_with_symbolic_backend(self):
        sc = ring_diamond(10, seed=1)
        plan = order_update(
            sc.topology, sc.init, sc.final, sc.ingresses, sc.spec, checker="symbolic"
        )
        assert plan.num_updates() > 0


# property-based agreement with the batch labeling checker ---------------
ATOMS = [At("T1"), At("A1"), At("C1"), At("C2"), At("A3"), At("T3"), At("H3"), Dropped()]


@st.composite
def nnf_formulas(draw, depth=2):
    if depth == 0:
        atom = draw(st.sampled_from(ATOMS))
        return draw(st.sampled_from([Prop(atom), NotProp(atom), TRUE, FALSE]))
    kind = draw(st.sampled_from(["leaf", "and", "or", "next", "until", "release"]))
    if kind == "leaf":
        return draw(nnf_formulas(depth=0))
    if kind == "next":
        return Next(draw(nnf_formulas(depth=depth - 1)))
    left = draw(nnf_formulas(depth=depth - 1))
    right = draw(nnf_formulas(depth=depth - 1))
    return {"and": And, "or": Or, "until": Until, "release": Release}[kind](left, right)


@given(spec=nnf_formulas(), path=st.sampled_from([RED, GREEN, BLUE]))
@settings(max_examples=60, deadline=None)
def test_symbolic_agrees_with_batch(spec, path):
    expected = BatchChecker(structure(path), spec).full_check().ok
    assert SymbolicChecker(structure(path), spec).full_check().ok == expected
