"""Tests for the header-space algebra and the plumbing graph."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hsa.headerspace import FieldEncoder, HeaderSet, TernaryVector
from repro.hsa.plumber import (
    CoveragePolicy,
    DropFreedomPolicy,
    IsolationPolicy,
    PlumbingGraph,
    ServiceChainPolicy,
    WaypointPolicy,
)
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.topo import mini_datacenter

WIDTH = 6


def tv(text):
    return TernaryVector.from_string(text)


class TestTernaryVector:
    def test_parse_roundtrip(self):
        assert tv("1x0").to_string() == "1x0"

    def test_wildcard(self):
        w = TernaryVector.wildcard(4)
        assert w.to_string() == "xxxx"

    def test_intersect_compatible(self):
        assert tv("1x").intersect(tv("x0")).to_string() == "10"

    def test_intersect_conflicting(self):
        assert tv("1x").intersect(tv("0x")) is None

    def test_subtract_disjoint(self):
        pieces = tv("1x").subtract(tv("0x"))
        assert len(pieces) == 1 and pieces[0].to_string() == "1x"

    def test_subtract_all(self):
        assert tv("10").subtract(tv("1x")) == []

    def test_subtract_partial(self):
        pieces = tv("xx").subtract(tv("11"))
        total = sum(1 << (2 - bin(p.care).count("1")) for p in pieces)
        assert total == 3  # 4 points minus the 1 covered

    def test_contains_point(self):
        assert tv("1x").contains_point(0b10)
        assert tv("1x").contains_point(0b11)
        assert not tv("1x").contains_point(0b01)

    def test_bad_chars_rejected(self):
        with pytest.raises(ValueError):
            tv("12")

    def test_value_bits_must_be_cared(self):
        with pytest.raises(ValueError):
            TernaryVector(2, care=0b01, bits=0b10)


class TestHeaderSet:
    def test_empty_and_all(self):
        assert HeaderSet.empty(4).is_empty()
        assert HeaderSet.all(4).count_points() == 16

    def test_union_intersect(self):
        a = HeaderSet.of(tv("1x"))
        b = HeaderSet.of(tv("x1"))
        assert a.union(b).count_points() == 3
        assert a.intersect(b).count_points() == 1

    def test_subtract(self):
        a = HeaderSet.all(2)
        b = HeaderSet.of(tv("1x"))
        assert a.subtract(b).count_points() == 2

    def test_subset(self):
        assert HeaderSet.of(tv("11")).is_subset_of(HeaderSet.of(tv("1x")))
        assert not HeaderSet.of(tv("1x")).is_subset_of(HeaderSet.of(tv("11")))

    def test_equals(self):
        a = HeaderSet(2, [tv("10"), tv("11")])
        b = HeaderSet.of(tv("1x"))
        assert a.equals(b)


# property-based boolean-algebra laws over a small universe ------------
vectors_st = st.text(alphabet="01x", min_size=WIDTH, max_size=WIDTH).map(tv)
sets_st = st.lists(vectors_st, min_size=0, max_size=3).map(
    lambda vs: HeaderSet(WIDTH, vs)
)
points_st = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


@given(a=sets_st, b=sets_st, p=points_st)
@settings(max_examples=300, deadline=None)
def test_union_membership(a, b, p):
    assert a.union(b).contains_point(p) == (a.contains_point(p) or b.contains_point(p))


@given(a=sets_st, b=sets_st, p=points_st)
@settings(max_examples=300, deadline=None)
def test_intersection_membership(a, b, p):
    assert a.intersect(b).contains_point(p) == (
        a.contains_point(p) and b.contains_point(p)
    )


@given(a=sets_st, b=sets_st, p=points_st)
@settings(max_examples=300, deadline=None)
def test_subtraction_membership(a, b, p):
    assert a.subtract(b).contains_point(p) == (
        a.contains_point(p) and not b.contains_point(p)
    )


@given(a=sets_st, b=sets_st)
@settings(max_examples=200, deadline=None)
def test_subset_iff_subtraction_empty(a, b):
    assert a.is_subset_of(b) == a.subtract(b).is_empty()


@given(a=sets_st)
@settings(max_examples=200, deadline=None)
def test_count_points_vs_enumeration(a):
    explicit = sum(1 for p in range(1 << WIDTH) if a.contains_point(p))
    assert a.count_points() == explicit


class TestFieldEncoder:
    def test_class_encoding_disjointness(self):
        enc = FieldEncoder()
        tc1 = TrafficClass.make("a", dst="H3")
        tc2 = TrafficClass.make("b", dst="H4")
        assert enc.encode_class(tc1).intersect(enc.encode_class(tc2)).is_empty()

    def test_wildcard_field_superset(self):
        enc = FieldEncoder()
        narrow = enc.encode_fields({"src": "H1", "dst": "H3"})
        wide = enc.encode_fields({"dst": "H3"})
        assert HeaderSet.of(narrow).is_subset_of(HeaderSet.of(wide))

    def test_too_many_values(self):
        enc = FieldEncoder(bits_per_field=2)
        enc.value_id("dst", "a")
        enc.value_id("dst", "b")
        enc.value_id("dst", "c")
        with pytest.raises(ValueError):
            enc.value_id("dst", "d")

    def test_unknown_field(self):
        enc = FieldEncoder(fields=("dst",))
        with pytest.raises(KeyError):
            enc.value_id("nope", "x")


# ----------------------------------------------------------------------
TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]


def plumb(path=RED):
    topo = mini_datacenter()
    config = Configuration.from_paths(topo, {TC: path})
    graph = PlumbingGraph(topo)
    graph.add_source("s", TC, "H1")
    for sw in topo.switches:
        graph.set_table(sw, config.table(sw))
    return topo, config, graph


class TestPlumbingGraph:
    def test_coverage_holds(self):
        _, _, graph = plumb()
        (result,) = graph.check([CoveragePolicy(TC, "H3")])
        assert result.ok

    def test_coverage_fails_on_blackhole(self):
        topo, config, graph = plumb()
        graph.set_table("C1", Configuration.empty().table("C1"))
        (result,) = graph.check([CoveragePolicy(TC, "H3")])
        assert not result.ok
        assert "dropped" in result.detail

    def test_waypoint_policies(self):
        _, _, graph = plumb()
        assert graph.check([WaypointPolicy(TC, "C1", "H3")])[0].ok
        assert not graph.check([WaypointPolicy(TC, "C2", "H3")])[0].ok

    def test_chain_policy(self):
        _, _, graph = plumb()
        assert graph.check([ServiceChainPolicy(TC, ("A1", "C1", "A3"), "H3")])[0].ok
        assert not graph.check([ServiceChainPolicy(TC, ("C1", "A1"), "H3")])[0].ok

    def test_isolation_policy(self):
        _, _, graph = plumb()
        assert graph.check([IsolationPolicy(TC, "C2")])[0].ok
        assert not graph.check([IsolationPolicy(TC, "C1")])[0].ok

    def test_dropfree_policy(self):
        _, _, graph = plumb()
        assert graph.check([DropFreedomPolicy(TC)])[0].ok

    def test_incremental_skips_untouched_sources(self):
        topo, config, graph = plumb()
        graph.refresh()
        before = graph.propagations
        # C2 is not on the red path: no re-propagation needed
        graph.set_table("C2", config.table("C1"))
        graph.refresh()
        assert graph.propagations == before

    def test_incremental_repropagates_touched(self):
        topo, config, graph = plumb()
        graph.refresh()
        before = graph.propagations
        graph.set_table("A1", config.table("A1"))
        graph.refresh()
        assert graph.propagations > before

    def test_loop_detection(self):
        from repro.net.rules import Forward, Pattern, Rule, Table

        topo, config, graph = plumb()
        back = Rule(99, Pattern(None, TC.fields), (Forward(topo.port_to("C1", "A1")),))
        fwd = Rule(99, Pattern(None, TC.fields), (Forward(topo.port_to("A1", "C1")),))
        graph.set_table("C1", Table([back]))
        graph.set_table("A1", Table([fwd]))
        (result,) = graph.check([CoveragePolicy(TC, "H3")])
        assert not result.ok
        assert "loop" in result.detail
