"""Tests for the BDD package: reduction invariants and boolean-algebra laws."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.bdd import BDD

NUM_VARS = 5


def truth_table(bdd, node):
    """Evaluate ``node`` on all assignments over the manager's variables."""
    return tuple(
        bdd.evaluate(node, bits)
        for bits in itertools.product([False, True], repeat=bdd.num_vars)
    )


class TestBasics:
    def test_terminals(self):
        bdd = BDD(2)
        assert bdd.is_true(bdd.true)
        assert bdd.is_false(bdd.false)
        assert truth_table(bdd, bdd.true) == (True,) * 4

    def test_var_and_negation(self):
        bdd = BDD(2)
        x0 = bdd.var(0)
        assert truth_table(bdd, x0) == (False, False, True, True)
        assert truth_table(bdd, bdd.nvar(0)) == (True, True, False, False)
        assert bdd.neg(x0) == bdd.nvar(0)

    def test_out_of_range_var(self):
        with pytest.raises(ValueError):
            BDD(1).var(1)

    def test_hash_consing(self):
        bdd = BDD(3)
        a = bdd.conj(bdd.var(0), bdd.var(1))
        b = bdd.conj(bdd.var(0), bdd.var(1))
        assert a == b  # same node id, not just equivalent

    def test_reduction_no_redundant_nodes(self):
        bdd = BDD(2)
        # x0 ? x1 : x1 reduces to x1
        assert bdd.ite(bdd.var(0), bdd.var(1), bdd.var(1)) == bdd.var(1)

    def test_cube(self):
        bdd = BDD(3)
        cube = bdd.cube([(0, True), (2, False)])
        table = truth_table(bdd, cube)
        expected = tuple(
            bits[0] and not bits[2]
            for bits in itertools.product([False, True], repeat=3)
        )
        assert table == expected

    def test_any_model(self):
        bdd = BDD(3)
        f = bdd.conj(bdd.var(0), bdd.nvar(2))
        model = bdd.any_model(f)
        assert model is not None
        full = [model.get(i, False) for i in range(3)]
        assert bdd.evaluate(f, full)
        assert bdd.any_model(bdd.false) is None

    def test_count_models(self):
        bdd = BDD(3)
        assert bdd.count_models(bdd.true) == 8
        assert bdd.count_models(bdd.false) == 0
        assert bdd.count_models(bdd.var(1)) == 4
        assert bdd.count_models(bdd.conj(bdd.var(0), bdd.var(1))) == 2

    def test_support(self):
        bdd = BDD(4)
        f = bdd.disj(bdd.var(1), bdd.var(3))
        assert bdd.support(f) == (1, 3)

    def test_exists(self):
        bdd = BDD(2)
        f = bdd.conj(bdd.var(0), bdd.var(1))
        assert bdd.exists(f, [0]) == bdd.var(1)
        assert bdd.exists(f, [0, 1]) == bdd.true

    def test_forall(self):
        bdd = BDD(2)
        f = bdd.disj(bdd.var(0), bdd.var(1))
        assert bdd.forall(f, [0]) == bdd.var(1)

    def test_rename(self):
        bdd = BDD(4)
        f = bdd.conj(bdd.var(0), bdd.nvar(2))
        g = bdd.rename(f, {0: 1, 2: 3})
        assert g == bdd.conj(bdd.var(1), bdd.nvar(3))


# ----------------------------------------------------------------------
# property-based: BDD ops agree with pointwise boolean semantics
# ----------------------------------------------------------------------
@st.composite
def bdd_exprs(draw, depth=3):
    """An expression tree evaluated both as a BDD and pointwise."""
    if depth == 0:
        kind = draw(st.sampled_from(["var", "const"]))
        if kind == "var":
            i = draw(st.integers(min_value=0, max_value=NUM_VARS - 1))
            return ("var", i)
        return ("const", draw(st.booleans()))
    kind = draw(st.sampled_from(["not", "and", "or", "xor", "leaf"]))
    if kind == "leaf":
        return draw(bdd_exprs(depth=0))
    if kind == "not":
        return ("not", draw(bdd_exprs(depth=depth - 1)))
    return (kind, draw(bdd_exprs(depth=depth - 1)), draw(bdd_exprs(depth=depth - 1)))


def build(bdd, expr):
    tag = expr[0]
    if tag == "var":
        return bdd.var(expr[1])
    if tag == "const":
        return bdd.true if expr[1] else bdd.false
    if tag == "not":
        return bdd.neg(build(bdd, expr[1]))
    left, right = build(bdd, expr[1]), build(bdd, expr[2])
    return {"and": bdd.conj, "or": bdd.disj, "xor": bdd.xor}[tag](left, right)


def eval_expr(expr, bits):
    tag = expr[0]
    if tag == "var":
        return bits[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "not":
        return not eval_expr(expr[1], bits)
    left, right = eval_expr(expr[1], bits), eval_expr(expr[2], bits)
    if tag == "and":
        return left and right
    if tag == "or":
        return left or right
    return left != right  # xor


@given(expr=bdd_exprs())
@settings(max_examples=200, deadline=None)
def test_bdd_matches_pointwise_semantics(expr):
    bdd = BDD(NUM_VARS)
    node = build(bdd, expr)
    for bits in itertools.product([False, True], repeat=NUM_VARS):
        assert bdd.evaluate(node, bits) == eval_expr(expr, bits)


@given(expr=bdd_exprs(), var=st.integers(min_value=0, max_value=NUM_VARS - 1))
@settings(max_examples=150, deadline=None)
def test_exists_is_disjunction_of_cofactors(expr, var):
    bdd = BDD(NUM_VARS)
    node = build(bdd, expr)
    quantified = bdd.exists(node, [var])
    for bits in itertools.product([False, True], repeat=NUM_VARS):
        low = list(bits)
        low[var] = False
        high = list(bits)
        high[var] = True
        expected = bdd.evaluate(node, low) or bdd.evaluate(node, high)
        assert bdd.evaluate(quantified, bits) == expected


@given(expr=bdd_exprs())
@settings(max_examples=150, deadline=None)
def test_count_models_matches_enumeration(expr):
    bdd = BDD(NUM_VARS)
    node = build(bdd, expr)
    explicit = sum(
        1
        for bits in itertools.product([False, True], repeat=NUM_VARS)
        if bdd.evaluate(node, bits)
    )
    assert bdd.count_models(node) == explicit


@given(expr=bdd_exprs())
@settings(max_examples=100, deadline=None)
def test_double_negation(expr):
    bdd = BDD(NUM_VARS)
    node = build(bdd, expr)
    assert bdd.neg(bdd.neg(node)) == node
