"""Tests for the benchmark observatory: history, `repro report`, CLI.

The cross-backend judge has its own module (``test_judge.py``); here we
cover the trajectory file (append/load round-trip, provenance meta), the
report builder (trends, anchor resolution, regression gate), and the CLI
wiring (``bench --history``, ``report`` exit codes, ``--json``).
"""

import copy
import json

import pytest

from repro.bench.runner import collect_meta, run_suite
from repro.cli import main
from repro.errors import ParseError, ReproError
from repro.observatory import (
    HISTORY_SCHEMA,
    REPORT_SCHEMA,
    append_history,
    build_report,
    format_report,
    history_line,
    load_history,
    resolve_anchor,
)


@pytest.fixture(scope="module")
def smoke_document():
    return run_suite("smoke", quick=True, workers=0, timeout=60.0)


def _slowed(document, factor=2.0, pad=0.1):
    """A deep copy of ``document`` with every scenario slowed down."""
    slow = copy.deepcopy(document)
    for row in slow["scenarios"]:
        row["seconds"] = row["seconds"] * factor + pad
    slow["totals"]["busy_seconds"] = sum(r["seconds"] for r in slow["scenarios"])
    return slow


class TestBenchMeta:
    """Satellite: every fresh BENCH document carries provenance meta."""

    def test_document_embeds_meta(self, smoke_document):
        meta = smoke_document["meta"]
        # UTC ISO-8601 with the explicit Z suffix
        assert meta["generated_at"].endswith("Z")
        assert "T" in meta["generated_at"]
        assert meta["hostname"]
        # this test runs inside the repo, so the SHA must resolve
        assert meta["git_sha"] and len(meta["git_sha"]) == 40

    def test_collect_meta_survives_no_git(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        meta = collect_meta()
        assert meta["git_sha"] is None
        assert meta["generated_at"].endswith("Z")

    def test_meta_threads_into_history_line(self, smoke_document):
        line = history_line(smoke_document)
        assert line["schema"] == HISTORY_SCHEMA
        assert line["recorded_at"] == smoke_document["meta"]["generated_at"]
        assert line["git_sha"] == smoke_document["meta"]["git_sha"]
        assert line["hostname"] == smoke_document["meta"]["hostname"]
        assert line["suite"] == "smoke"
        assert line["quick"] is True
        assert line["options"]["checker"] == smoke_document["checker"]
        assert line["bench"] is smoke_document

    def test_pre_meta_documents_still_wrap(self, smoke_document):
        legacy = copy.deepcopy(smoke_document)
        del legacy["meta"]
        line = history_line(legacy)
        # provenance collected on the spot rather than lost
        assert line["recorded_at"].endswith("Z")
        assert line["hostname"]

    def test_non_bench_document_rejected(self):
        with pytest.raises(ReproError, match="not a BENCH document"):
            history_line({"schema": "repro-report/1"})


class TestHistoryRoundTrip:
    def test_append_load_two_runs(self, tmp_path, smoke_document):
        path = tmp_path / "deep" / "HISTORY.jsonl"  # parent dirs created
        append_history(smoke_document, str(path))
        append_history(_slowed(smoke_document), str(path))
        entries = load_history(str(path))
        assert len(entries) == 2
        assert all(e["schema"] == HISTORY_SCHEMA for e in entries)
        # oldest first, full document embedded losslessly
        assert entries[0]["bench"]["totals"] == smoke_document["totals"]
        assert (
            entries[1]["bench"]["totals"]["busy_seconds"]
            > entries[0]["bench"]["totals"]["busy_seconds"]
        )

    def test_blank_and_comment_lines_skipped(self, tmp_path, smoke_document):
        path = tmp_path / "HISTORY.jsonl"
        append_history(smoke_document, str(path))
        with open(path, "a") as handle:
            handle.write("\n# a nightly job left this note\n")
        append_history(smoke_document, str(path))
        assert len(load_history(str(path))) == 2

    def test_suite_filter(self, tmp_path, smoke_document):
        path = tmp_path / "HISTORY.jsonl"
        append_history(smoke_document, str(path))
        other = copy.deepcopy(smoke_document)
        other["suite"] = "full"
        append_history(other, str(path))
        assert len(load_history(str(path), suite="smoke")) == 1
        with pytest.raises(ReproError, match="no runs of suite"):
            load_history(str(path), suite="zoo")

    def test_missing_file_gets_recipe(self, tmp_path):
        with pytest.raises(ReproError, match="repro bench .*--history"):
            load_history(str(tmp_path / "absent.jsonl"))

    def test_malformed_lines_name_path_and_lineno(self, tmp_path, smoke_document):
        path = tmp_path / "HISTORY.jsonl"
        append_history(smoke_document, str(path))
        with open(path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ParseError, match=r"HISTORY\.jsonl:2: bad JSON"):
            load_history(str(path))

        path.write_text('{"schema": "other/1"}\n')
        with pytest.raises(ParseError, match="not a history line"):
            load_history(str(path))

        path.write_text(json.dumps({"schema": HISTORY_SCHEMA}) + "\n")
        with pytest.raises(ParseError, match="no 'bench' document"):
            load_history(str(path))


class TestAnchorResolution:
    def _entries(self, smoke_document, shas):
        entries = []
        for sha in shas:
            line = history_line(smoke_document)
            line["git_sha"] = sha
            entries.append(line)
        return entries

    def test_index_and_negative_index(self, smoke_document):
        entries = self._entries(smoke_document, ["aaa", "bbb", "ccc"])
        assert resolve_anchor(entries, anchor=0) == 0
        assert resolve_anchor(entries, anchor=2) == 2
        assert resolve_anchor(entries, anchor=-1) == 2
        assert resolve_anchor(entries, anchor=-3) == 0
        with pytest.raises(ReproError, match="out of range"):
            resolve_anchor(entries, anchor=3)
        with pytest.raises(ReproError, match="out of range"):
            resolve_anchor(entries, anchor=-4)

    def test_sha_prefix_picks_most_recent_match(self, smoke_document):
        entries = self._entries(smoke_document, ["abc111", "def222", "abc333"])
        assert resolve_anchor(entries, anchor_sha="abc3") == 2
        assert resolve_anchor(entries, anchor_sha="abc") == 2  # newest wins
        assert resolve_anchor(entries, anchor_sha="def") == 1
        with pytest.raises(ReproError, match="no run with git sha"):
            resolve_anchor(entries, anchor_sha="feed")


class TestBuildReport:
    def test_single_run_is_vacuously_ok(self, smoke_document):
        document = build_report([history_line(smoke_document)])
        assert document["schema"] == REPORT_SCHEMA
        assert document["ok"] is True
        assert document["regressions"]["regressions"] == []
        assert any(
            "single run" in note for note in document["regressions"]["notes"]
        )

    def test_runs_and_trends_shapes(self, smoke_document):
        entries = [
            history_line(smoke_document),
            history_line(_slowed(smoke_document, factor=1.0, pad=0.0)),
        ]
        document = build_report(entries)
        assert [run["index"] for run in document["runs"]] == [0, 1]
        run = document["runs"][0]
        assert run["scenarios"] == smoke_document["totals"]["scenarios"]
        assert 0.0 <= run["cache_hit_rate"] <= 1.0
        assert 0.0 <= run["memo_hit_rate"] <= 1.0
        # one trend slot per run, for every scenario and family
        for series in document["trends"]["scenarios"].values():
            assert len(series["seconds"]) == 2
            assert len(series["status"]) == 2
        for series in document["trends"]["families"].values():
            assert len(series["mean_seconds"]) == 2
            assert series["scenarios"][0] >= 1

    def test_identical_runs_pass_injected_slowdown_fails(self, smoke_document):
        same = [history_line(smoke_document), history_line(smoke_document)]
        assert build_report(same)["ok"] is True

        entries = [
            history_line(smoke_document),
            history_line(_slowed(smoke_document)),
        ]
        document = build_report(entries)
        assert document["ok"] is False
        assert document["regressions"]["regressions"]

    def test_anchor_sha_pins_the_comparison(self, smoke_document):
        slow_line = history_line(_slowed(smoke_document))
        slow_line["git_sha"] = "feedface" + "0" * 32
        entries = [slow_line, history_line(smoke_document)]
        # default anchor (the slow run) vs the fast latest: fine
        assert build_report(entries)["ok"] is True
        # anchoring on the latest's own sha compares it to itself: fine too
        sha = entries[1]["git_sha"]
        assert build_report(entries, anchor_sha=sha[:8])["ok"] is True

    def test_config_mismatch_and_cross_host_notes(self, smoke_document):
        entries = [history_line(smoke_document), history_line(smoke_document)]
        entries[0]["quick"] = False
        entries[0]["hostname"] = "somewhere-else"
        notes = build_report(entries)["regressions"]["notes"]
        assert any("configuration differs on quick" in note for note in notes)
        assert any("different hosts" in note for note in notes)

    def test_empty_history_rejected(self):
        with pytest.raises(ReproError, match="no runs"):
            build_report([])

    def test_format_report_renders(self, smoke_document):
        entries = [
            history_line(smoke_document),
            history_line(_slowed(smoke_document)),
        ]
        text = format_report(build_report(entries))
        assert "bench history: 2 run(s)" in text
        assert "per-family mean seconds" in text
        assert "slowest scenarios" in text
        assert "REGRESSED" in text


class TestCli:
    def test_bench_history_appends_and_report_gates(
        self, tmp_path, smoke_document, capsys
    ):
        history = tmp_path / "HISTORY.jsonl"
        assert (
            main(
                ["bench", "--suite", "smoke", "--quick",
                 "--out", str(tmp_path / "BENCH.json"),
                 "--history", str(history)]
            )
            == 0
        )
        assert "appended to history" in capsys.readouterr().err
        assert len(load_history(str(history))) == 1

        # one run: report renders and exits 0
        assert main(["report", str(history)]) == 0
        assert "single run" in capsys.readouterr().out

        # append an artificially slow second run: report exits non-zero
        append_history(_slowed(smoke_document), str(history))
        assert main(["report", str(history)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_report_json_and_out(self, tmp_path, smoke_document, capsys):
        history = tmp_path / "HISTORY.jsonl"
        append_history(smoke_document, str(history))
        append_history(smoke_document, str(history))
        out = tmp_path / "REPORT.json"
        assert main(["report", str(history), "--json", "--out", str(out)]) == 0
        stdout_doc = json.loads(capsys.readouterr().out)
        assert stdout_doc["schema"] == REPORT_SCHEMA
        assert stdout_doc["ok"] is True
        assert json.loads(out.read_text())["runs"] == stdout_doc["runs"]

    def test_report_missing_history_exits_one(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 1
        assert "no bench history" in capsys.readouterr().err

    def test_report_malformed_history_exits_four(self, tmp_path, capsys):
        path = tmp_path / "HISTORY.jsonl"
        path.write_text("{broken\n")
        assert main(["report", str(path)]) == 4
        assert "parse error" in capsys.readouterr().err
