"""Tests for topology generators, the GML parser, and diamond scenarios."""

import random

import pytest

from repro.errors import ParseError
from repro.net.topology import Topology
from repro.topo import (
    builtin_zoo,
    chained_diamond,
    diamond_on_topology,
    double_diamond,
    fan_diamond,
    fat_tree,
    mini_datacenter,
    parse_gml,
    ring_diamond,
    small_world,
    synthetic_zoo,
    to_gml,
    zoo_topology,
)


def connected(topo):
    nodes = sorted(topo.switches)
    if not nodes:
        return True
    seen = {nodes[0]}
    stack = [nodes[0]]
    while stack:
        node = stack.pop()
        for nxt in topo.neighbors(node):
            if topo.is_switch(nxt) and nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen == set(nodes)


class TestFatTree:
    def test_switch_count(self):
        # 5k^2/4 switches
        assert len(fat_tree(4).switches) == 20
        assert len(fat_tree(6).switches) == 45

    def test_hosts(self):
        topo = fat_tree(4, with_hosts=True)
        assert len(topo.hosts) == 16  # k^3/4

    def test_connected(self):
        assert connected(fat_tree(4))

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_mini_datacenter_shape(self):
        topo = mini_datacenter()
        assert len(topo.switches) == 10
        assert len(topo.hosts) == 4
        assert topo.are_adjacent("C1", "A1")


class TestSmallWorld:
    def test_size_and_connectivity(self):
        topo = small_world(40, seed=1)
        assert len(topo.switches) == 40
        assert connected(topo)

    def test_ring_backbone_kept(self):
        topo = small_world(20, rewire_probability=1.0, seed=2)
        for i in range(20):
            assert topo.are_adjacent(f"S{i}", f"S{(i + 1) % 20}")

    def test_deterministic(self):
        a = small_world(30, seed=5)
        b = small_world(30, seed=5)
        assert {(link.node_a, link.node_b) for link in a.links} == {
            (link.node_a, link.node_b) for link in b.links
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            small_world(2)
        with pytest.raises(ValueError):
            small_world(10, k=3)


class TestGml:
    GML = """
    graph [
      node [ id 0 label "A" ]
      node [ id 1 label "B" ]
      node [ id 2 label "C" ]
      edge [ source 0 target 1 ]
      edge [ source 1 target 2 ]
      edge [ source 1 target 2 ]
      edge [ source 2 target 2 ]
    ]
    """

    def test_parse_nodes_and_edges(self):
        topo = parse_gml(self.GML)
        assert topo.switches == frozenset({"A", "B", "C"})
        # duplicate edge and self-loop skipped
        assert len(topo.links) == 2

    def test_duplicate_labels_disambiguated(self):
        text = """
        graph [
          node [ id 0 label "X" ]
          node [ id 1 label "X" ]
          edge [ source 0 target 1 ]
        ]
        """
        topo = parse_gml(text)
        assert len(topo.switches) == 2

    def test_unlabeled_nodes(self):
        text = 'graph [ node [ id 7 ] node [ id 8 ] edge [ source 7 target 8 ] ]'
        topo = parse_gml(text)
        assert "n7" in topo.switches

    def test_bad_gml(self):
        with pytest.raises(ParseError):
            parse_gml("graph [ node [ id ] ]")
        with pytest.raises(ParseError):
            parse_gml("not gml at all [")

    def test_undeclared_edge_endpoints_materialized(self):
        # real zoo files sometimes reference ids with no node record;
        # the parser materializes implicit n<id> switches instead of failing
        topo = parse_gml("graph [ edge [ source 0 target 1 ] ]")
        assert topo.switches == frozenset({"n0", "n1"})
        assert topo.are_adjacent("n0", "n1")

    def test_zoo_quirks_tolerated(self):
        # directed/multigraph flags, duplicate ids, numeric labels
        text = """
        graph [
          directed 1
          multigraph 1
          node [ id 0 label "A" ]
          node [ id 0 label "Azz" ]
          node [ id 1 label 42 ]
          edge [ source 0 target 1 ]
          edge [ source 1 target 0 ]
        ]
        """
        topo = parse_gml(text)
        assert topo.switches == frozenset({"A", "42"})
        assert len(topo.links) == 1

    def test_to_gml_round_trip(self):
        topo = parse_gml(self.GML)
        again = parse_gml(to_gml(topo, name="roundtrip"))
        assert again.switches == topo.switches
        for link in topo.links:
            assert again.are_adjacent(link.node_a, link.node_b)

    def test_fuzzed_round_trip(self):
        # random graphs (with gnarly names) survive to_gml -> parse_gml
        rng = random.Random(7)
        for trial in range(25):
            topo = Topology()
            n = rng.randint(2, 12)
            # no spaces (the parser normalizes them), but quotes and dots
            names = [f'sw"{i}".t{trial}' for i in range(n)]
            for name in names:
                topo.add_switch(name)
            edges = set()
            for _ in range(rng.randint(1, 2 * n)):
                a, b = rng.sample(names, 2)
                if frozenset((a, b)) not in edges:
                    edges.add(frozenset((a, b)))
                    topo.add_link(a, b)
            again = parse_gml(to_gml(topo))
            assert again.switches == set(names)
            adjacency = {
                frozenset((link.node_a, link.node_b)) for link in again.links
            }
            assert adjacency == edges


class TestZoo:
    def test_builtin_topologies_connected(self):
        for name, topo in builtin_zoo():
            assert connected(topo), name
            assert len(topo.switches) >= 10

    def test_lookup_by_name(self):
        topo = zoo_topology("abilene")
        assert "SEA" in topo.switches

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            zoo_topology("nope")

    def test_synthetic_zoo_deterministic_and_connected(self):
        zoo_a = synthetic_zoo(6, seed=3)
        zoo_b = synthetic_zoo(6, seed=3)
        for (name_a, topo_a), (name_b, topo_b) in zip(zoo_a, zoo_b):
            assert name_a == name_b
            assert connected(topo_a)
            assert len(topo_a.links) == len(topo_b.links)


class TestDiamonds:
    def test_ring_diamond_scenario(self):
        sc = ring_diamond(20, seed=1)
        assert sc.units_updating() >= 18
        assert sc.init != sc.final
        assert len(sc.classes) == 1

    def test_diamond_on_topology(self):
        sc = diamond_on_topology(fat_tree(4), seed=1, name="ft")
        assert sc is not None
        assert sc.units_updating() >= 2

    def test_chained_diamond_props(self):
        for prop in ("reachability", "waypoint", "chain"):
            sc = chained_diamond(2, 2, prop=prop)
            assert sc.prop == prop
            # 2 segments x 2 chains x 2 switches + shared waypoint flips
            assert sc.units_updating() >= 8

    def test_chained_diamond_bad_args(self):
        with pytest.raises(ValueError):
            chained_diamond(0, 1)

    def test_double_diamond_two_classes(self):
        sc = double_diamond(12)
        assert len(sc.classes) == 2
        assert not sc.expected_feasible

    def test_fan_diamond_forces_the_enabler_first(self):
        from repro.errors import UpdateInfeasibleError
        from repro.synthesis import order_update

        sc = fan_diamond(4)
        assert len(sc.classes) == 4
        assert sc.units_updating() == 5  # 4 flips + the shared enabler
        # the shared enabler must be the first update in any plan
        plan = order_update(
            sc.topology, sc.init, sc.final, sc.ingresses, sc.spec,
            use_reachability_heuristic=False,
        )
        updates = [c.switch for c in plan.updates()]
        assert updates[0] == "Zall"
        # and the adversarial naming makes the heuristic-off search pay a
        # refuted check per flip before finding it
        assert plan.stats.counterexamples >= 3
        # sanity: no flip-first order exists
        final_flip_first = sc.init.with_table("A00", sc.final.table("A00"))
        with pytest.raises(UpdateInfeasibleError):
            order_update(
                sc.topology, final_flip_first, sc.init, sc.ingresses, sc.spec,
            )
