"""Seeded cross-backend differential tests on small synthesis problems.

The same problems the judge replays in CI, shrunk to unit-test size: every
checker backend must produce the identical verdict — and, because the
ordering search is deterministic given checker verdicts, the identical
normalized plan — on seeded random scenarios.  Any split means a backend
answered some intermediate model-checking query wrong.

Also pins the counterexample contract the search relies on: whenever a
backend refutes a configuration it must hand back a trace that the
reference trace semantics (:mod:`repro.ltl.semantics`) confirms violates
the spec — a bogus counterexample would silently misdirect the CEGIS
pruning rather than crash it.
"""

import pytest

from repro.errors import UpdateInfeasibleError
from repro.kripke.structure import KripkeStructure
from repro.ltl.semantics import evaluate
from repro.mc import make_checker
from repro.net.config import Configuration
from repro.net.serialize import plan_to_dict
from repro.synthesis import UpdateSynthesizer
from repro.topo import double_diamond, ring_diamond
from repro.topo.diamond import chained_diamond

#: the backends whose consensus is the oracle; netplumber is exercised via
#: ``repro judge`` instead (it rejects spec shapes outside repro.ltl.specs)
BACKENDS = ("incremental", "batch", "symbolic")


def _solve(scenario, backend, granularity="switch"):
    """(status, normalized plan) of one backend on one scenario."""
    synth = UpdateSynthesizer(
        scenario.topology, checker=backend, granularity=granularity
    )
    try:
        plan = synth.synthesize(
            scenario.init,
            scenario.final,
            scenario.spec,
            scenario.ingresses,
            timeout=60.0,
        )
    except UpdateInfeasibleError:
        return "infeasible", None
    data = plan_to_dict(plan)
    return "done", {"granularity": data["granularity"], "commands": data["commands"]}


def _assert_backends_agree(scenario, granularity="switch"):
    outcomes = {
        backend: _solve(scenario, backend, granularity) for backend in BACKENDS
    }
    reference_backend = BACKENDS[0]
    reference = outcomes[reference_backend]
    for backend, outcome in outcomes.items():
        assert outcome[0] == reference[0], (
            scenario.name,
            backend,
            {name: status for name, (status, _) in outcomes.items()},
        )
        assert outcome[1] == reference[1], (scenario.name, backend)
    return reference


class TestSynthesisDifferential:
    @pytest.mark.parametrize("n", [6, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ring_diamonds_agree(self, n, seed):
        status, plan = _assert_backends_agree(ring_diamond(n, seed=seed))
        assert status == "done"
        assert plan["commands"]

    @pytest.mark.parametrize("prop", ["waypoint", "chain"])
    def test_chained_diamonds_agree(self, prop):
        status, _ = _assert_backends_agree(chained_diamond(2, 3, prop=prop))
        assert status == "done"

    @pytest.mark.parametrize("seed", [0, 1])
    def test_double_diamond_infeasible_for_every_backend(self, seed):
        scenario = double_diamond(6, seed=seed)
        assert not scenario.expected_feasible
        status, plan = _assert_backends_agree(scenario)
        assert status == "infeasible"
        assert plan is None

    @pytest.mark.parametrize("seed", [0, 1])
    def test_double_diamond_solvable_at_rule_granularity(self, seed):
        # Figure 8(h)/(i): the same instance flips to feasible when updates
        # may split per rule — and the backends must agree there too
        scenario = double_diamond(6, seed=seed)
        status, plan = _assert_backends_agree(scenario, granularity="rule")
        assert status == "done"
        assert plan["granularity"] == "rule"


class TestCheckDifferential:
    """full_check verdicts and counterexample validity across backends."""

    def _cases(self):
        for seed in (0, 1, 2):
            scenario = ring_diamond(6, seed=seed)
            yield scenario, scenario.init, True
            # the empty configuration drops everything at the ingress
            yield scenario, Configuration.empty(), False

    def test_verdicts_match_reference_semantics(self):
        for scenario, config, expected_ok in self._cases():
            ks = KripkeStructure(scenario.topology, config, scenario.ingresses)
            reference = all(
                evaluate(scenario.spec, path) for path in ks.maximal_paths()
            )
            assert reference == expected_ok, scenario.name
            for backend in BACKENDS:
                ks = KripkeStructure(
                    scenario.topology, config, scenario.ingresses
                )
                result = make_checker(backend, ks, scenario.spec).full_check()
                assert result.ok == expected_ok, (scenario.name, backend)

    def test_counterexamples_are_genuine_violations(self):
        checked = 0
        for scenario, config, expected_ok in self._cases():
            if expected_ok:
                continue
            for backend in BACKENDS:
                ks = KripkeStructure(
                    scenario.topology, config, scenario.ingresses
                )
                result = make_checker(backend, ks, scenario.spec).full_check()
                assert not result.ok
                if result.counterexample is not None:
                    assert not evaluate(scenario.spec, result.counterexample), (
                        scenario.name,
                        backend,
                    )
                    checked += 1
        assert checked >= 3  # the sweep produced real counterexamples
