"""Tests for controller commands and careful sequences."""

from repro.net.commands import (
    Flush,
    Incr,
    SwitchUpdate,
    Wait,
    count_waits,
    expand_waits,
    is_careful,
    is_update,
    make_careful,
    updates_of,
)
from repro.net.rules import Table

U1 = SwitchUpdate("A", Table())
U2 = SwitchUpdate("B", Table())
U3 = SwitchUpdate("C", Table())


class TestExpansion:
    def test_wait_desugars(self):
        assert expand_waits([U1, Wait(), U2]) == [U1, Incr(), Flush(), U2]

    def test_no_waits_untouched(self):
        assert expand_waits([U1, U2]) == [U1, U2]


class TestCareful:
    def test_empty_is_careful(self):
        assert is_careful([])

    def test_single_update_is_careful(self):
        assert is_careful([U1])

    def test_adjacent_updates_not_careful(self):
        assert not is_careful([U1, U2])

    def test_wait_separates(self):
        assert is_careful([U1, Wait(), U2])

    def test_desugared_wait_separates(self):
        assert is_careful([U1, Incr(), Flush(), U2])

    def test_incr_alone_not_enough(self):
        assert not is_careful([U1, Incr(), U2])

    def test_flush_without_incr_not_enough(self):
        assert not is_careful([U1, Flush(), U2])

    def test_flush_must_follow_incr(self):
        # flush from an older epoch does not cover a later incr
        assert not is_careful([U1, Flush(), Incr(), U2])

    def test_make_careful_inserts_waits(self):
        seq = make_careful([U1, U2, U3])
        assert is_careful(seq)
        assert count_waits(seq) == 2

    def test_make_careful_preserves_existing_waits(self):
        seq = make_careful([U1, Wait(), U2])
        assert count_waits(seq) == 1


class TestHelpers:
    def test_updates_of(self):
        assert updates_of([U1, Wait(), U2, Incr()]) == [U1, U2]

    def test_is_update(self):
        assert is_update(U1)
        assert not is_update(Wait())

    def test_count_waits_mixed(self):
        assert count_waits([U1, Wait(), U2, Incr(), Flush(), U3]) == 2

    def test_count_waits_unmatched_incr(self):
        assert count_waits([Incr(), U1]) == 0
