"""Tests for LTL syntax, closure, parser, and reference semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.ltl.atoms import At, AtPort, Dropped, FieldIs, StateView
from repro.ltl.closure import Closure
from repro.ltl.parser import parse
from repro.ltl.semantics import evaluate
from repro.ltl.syntax import (
    And,
    FALSE,
    Next,
    NotProp,
    Or,
    Prop,
    Release,
    TRUE,
    Until,
    atoms_of,
    conj,
    disj,
    F,
    G,
    implies,
    negate,
)
from repro.net.fields import TrafficClass

TC = TrafficClass.make("f", src="H1", dst="H3")


def view(node, port=1, dropped=False):
    return StateView(node, port, TC, dropped)


class TestAtoms:
    def test_at(self):
        assert At("S1").holds(view("S1"))
        assert not At("S1").holds(view("S2"))

    def test_at_port(self):
        assert AtPort("S1", 1).holds(view("S1", 1))
        assert not AtPort("S1", 2).holds(view("S1", 1))

    def test_field(self):
        assert FieldIs("dst", "H3").holds(view("S1"))
        assert not FieldIs("dst", "H4").holds(view("S1"))

    def test_dropped(self):
        assert Dropped().holds(view("S1", dropped=True))
        assert not Dropped().holds(view("S1"))


class TestSyntax:
    def test_negate_involution(self):
        phi = Until(Prop(At("a")), And(Prop(At("b")), NotProp(At("c"))))
        assert negate(negate(phi)) == phi

    def test_negate_duals(self):
        assert negate(TRUE) == FALSE
        a, b = Prop(At("a")), Prop(At("b"))
        assert isinstance(negate(And(a, b)), Or)
        assert isinstance(negate(Until(a, b)), Release)
        assert isinstance(negate(Release(a, b)), Until)
        assert isinstance(negate(Next(a)), Next)

    def test_sugar(self):
        a = Prop(At("a"))
        assert F(a) == Until(TRUE, a)
        assert G(a) == Release(FALSE, a)

    def test_conj_disj_simplify(self):
        a = Prop(At("a"))
        assert conj(TRUE, a) == a
        assert conj(FALSE, a) == FALSE
        assert disj(FALSE, a) == a
        assert disj(TRUE, a) == TRUE
        assert conj() == TRUE
        assert disj() == FALSE

    def test_implies_is_nnf(self):
        a, b = Prop(At("a")), Prop(At("b"))
        result = implies(a, b)
        assert result == Or(NotProp(At("a")), b)

    def test_atoms_of(self):
        phi = implies(Prop(FieldIs("dst", "H3")), F(Prop(At("H3"))))
        assert atoms_of(phi) == frozenset({FieldIs("dst", "H3"), At("H3")})

    def test_operators(self):
        a, b = Prop(At("a")), Prop(At("b"))
        assert (a & b) == And(a, b)
        assert (a | b) == Or(a, b)
        assert ~a == NotProp(At("a"))

    def test_size(self):
        a = Prop(At("a"))
        assert a.size() == 1
        assert And(a, a).size() == 3


class TestClosure:
    def test_children_before_parents(self):
        phi = Until(Prop(At("a")), And(Prop(At("b")), Prop(At("c"))))
        closure = Closure(phi)
        index = closure.index
        assert index[phi] > index[phi.left]
        assert index[phi] > index[phi.right]
        assert index[phi.right] > index[phi.right.left]

    def test_root_is_member(self):
        phi = F(Prop(At("a")))
        closure = Closure(phi)
        assert phi in closure
        assert len(closure) == 3  # true, at(a), true U at(a)

    def test_temporal_subset(self):
        phi = And(Next(Prop(At("a"))), G(Prop(At("b"))))
        closure = Closure(phi)
        assert len(closure.temporal) == 2


class TestParser:
    def test_reachability(self):
        phi = parse("dst=H3 => F at(H3)")
        assert phi == implies(Prop(FieldIs("dst", "H3")), F(Prop(At("H3"))))

    def test_waypoint_shape(self):
        phi = parse("!at(d) U (at(w) & F at(d))")
        assert isinstance(phi, Until)
        assert phi.left == NotProp(At("d"))

    def test_globally_not_dropped(self):
        phi = parse("G !dropped")
        assert phi == G(NotProp(Dropped()))

    def test_port_atom(self):
        phi = parse("at(S1:3)")
        assert phi == Prop(AtPort("S1", 3))

    def test_precedence_and_or(self):
        phi = parse("at(a) | at(b) & at(c)")
        # & binds tighter than |
        assert isinstance(phi, Or)

    def test_implication_right_assoc(self):
        phi = parse("at(a) => at(b) => at(c)")
        assert isinstance(phi, Or)

    def test_constants(self):
        assert parse("true") == TRUE
        assert parse("false") == FALSE

    def test_parens(self):
        assert parse("(at(a))") == Prop(At("a"))

    def test_negation_pushes_inward(self):
        phi = parse("!(at(a) & at(b))")
        assert isinstance(phi, Or)

    def test_until_right_assoc(self):
        phi = parse("at(a) U at(b) U at(c)")
        assert isinstance(phi, Until)
        assert isinstance(phi.right, Until)

    @pytest.mark.parametrize(
        "bad",
        ["", "at(", "at(a) &", "foo", "at(a) @ at(b)", "at(a) at(b)", "at(a:b)"],
    )
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestSemantics:
    def test_eventually(self):
        trace = [view("a"), view("b"), view("c")]
        assert evaluate(F(Prop(At("c"))), trace)
        assert not evaluate(F(Prop(At("d"))), trace)

    def test_globally_with_lasso(self):
        trace = [view("a"), view("a")]
        assert evaluate(G(Prop(At("a"))), trace)
        trace2 = [view("a"), view("b")]
        assert not evaluate(G(Prop(At("a"))), trace2)

    def test_next(self):
        trace = [view("a"), view("b")]
        assert evaluate(Next(Prop(At("b"))), trace)
        # beyond the end, the final state repeats
        assert evaluate(Next(Next(Prop(At("b")))), trace)

    def test_until(self):
        trace = [view("a"), view("a"), view("b")]
        assert evaluate(Until(Prop(At("a")), Prop(At("b"))), trace)
        assert not evaluate(Until(Prop(At("a")), Prop(At("c"))), trace)

    def test_until_requires_left_to_hold(self):
        trace = [view("a"), view("x"), view("b")]
        assert not evaluate(Until(Prop(At("a")), Prop(At("b"))), trace)

    def test_release_lasso(self):
        trace = [view("a"), view("a")]
        # G a == false R a: holds on the constant trace
        assert evaluate(Release(FALSE, Prop(At("a"))), trace)

    def test_release_released(self):
        # a R b: b must hold up to and including the point where a holds
        trace = [view("b"), view("ab")]
        phi = Release(Prop(At("ab")), disj(Prop(At("b")), Prop(At("ab"))))
        assert evaluate(phi, trace)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            evaluate(TRUE, [])


# ----------------------------------------------------------------------
# property-based: negation duality and F/G relationships
# ----------------------------------------------------------------------
NODES = ["a", "b", "c"]


@st.composite
def formulas(draw, depth=3):
    if depth == 0:
        node = draw(st.sampled_from(NODES))
        return draw(st.sampled_from([Prop(At(node)), NotProp(At(node)), TRUE, FALSE]))
    kind = draw(st.sampled_from(["atom", "and", "or", "next", "until", "release"]))
    if kind == "atom":
        return draw(formulas(depth=0))
    if kind == "next":
        return Next(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return {"and": And, "or": Or, "until": Until, "release": Release}[kind](left, right)


traces_st = st.lists(st.sampled_from(NODES), min_size=1, max_size=6).map(
    lambda nodes: [view(n) for n in nodes]
)


@given(phi=formulas(), trace=traces_st)
@settings(max_examples=300, deadline=None)
def test_negation_is_complement(phi, trace):
    assert evaluate(phi, trace) != evaluate(negate(phi), trace)


@given(phi=formulas(depth=2), trace=traces_st)
@settings(max_examples=200, deadline=None)
def test_globally_implies_eventually(phi, trace):
    if evaluate(G(phi), trace):
        assert evaluate(F(phi), trace)


@given(phi=formulas(depth=2), trace=traces_st)
@settings(max_examples=200, deadline=None)
def test_next_of_false_is_false(phi, trace):
    assert not evaluate(Next(FALSE), trace)
    assert evaluate(Next(TRUE), trace)
