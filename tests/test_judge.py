"""Tests for ``repro judge``: cross-backend consensus, injected liars, CLI.

``_execute_one`` is module-level in :mod:`repro.observatory.judge` exactly
so these tests can monkeypatch it and inject a backend that answers
wrong — the acceptance criterion for the judge is that such a dissenter
is detected, named, and turned into a non-zero exit.
"""

import json

import pytest

import repro.observatory.judge as judge_mod
from repro.cli import main
from repro.errors import ReproError
from repro.observatory import DEFAULT_BACKENDS, JUDGE_SCHEMA, run_judge
from repro.observatory.judge import _judge_agreement, _judge_race
from repro.scenarios import generate_corpus, sample_records

_real_execute_one = judge_mod._execute_one

BACKENDS = "incremental,batch"


def _lying_execute_one(record, backend, *, timeout):
    """The ``batch`` backend claims everything is infeasible."""
    if backend == "batch":
        return {"status": "infeasible", "seconds": 0.001, "reason": "injected lie"}
    return _real_execute_one(record, backend, timeout=timeout)


class TestAgreement:
    def test_honest_backends_agree(self):
        document = run_judge(
            "smoke",
            quick=True,
            backends=("incremental", "batch"),
            max_scenarios=6,
            race=False,
        )
        assert document["schema"] == JUDGE_SCHEMA
        assert document["totals"]["ok"] is True
        assert document["totals"]["disagreements"] == []
        assert document["totals"]["scenarios"] == 6
        assert set(document["by_backend"]) == {"incremental", "batch"}
        assert document["meta"]["generated_at"].endswith("Z")
        for row in document["scenarios"]:
            assert set(row["backends"]) == {"incremental", "batch"}
            assert row["disagreements"] == []
            assert row["race"] is None  # race=False

    def test_race_pass_reports_service_wins(self):
        document = run_judge(
            "smoke",
            quick=True,
            backends=("incremental", "batch"),
            max_scenarios=4,
            race=True,
        )
        assert document["totals"]["ok"] is True
        race_service = document["race_service"]
        assert sum(race_service["by_backend"].values()) == 4
        assert set(race_service["by_backend"]) <= {"incremental", "batch"}

    def test_unsupported_backend_excluded_from_consensus(self, monkeypatch):
        def partial(record, backend, *, timeout):
            if backend == "batch":
                return {
                    "status": "unsupported",
                    "seconds": 0.0,
                    "message": "cannot express this spec",
                }
            return _real_execute_one(record, backend, timeout=timeout)

        monkeypatch.setattr(judge_mod, "_execute_one", partial)
        document = run_judge(
            "smoke",
            quick=True,
            backends=("incremental", "batch"),
            max_scenarios=3,
            race=False,
        )
        # a capability gap is reported, never failed
        assert document["totals"]["ok"] is True
        assert document["totals"]["unsupported"] == {"batch": 3}

    def test_lying_backend_caught(self, monkeypatch):
        monkeypatch.setattr(judge_mod, "_execute_one", _lying_execute_one)
        document = run_judge(
            "smoke",
            quick=True,
            backends=("incremental", "batch"),
            max_scenarios=3,
            race=False,
        )
        assert document["totals"]["ok"] is False
        assert any(
            "verdict split" in d for d in document["totals"]["disagreements"]
        )

    def test_fewer_than_two_backends_rejected(self):
        with pytest.raises(ReproError, match="at least two backends"):
            run_judge("smoke", quick=True, backends=("incremental",))

    def test_unknown_suite_raises(self):
        with pytest.raises(ReproError):
            run_judge("no-such-suite", backends=DEFAULT_BACKENDS)


class TestJudgeAgreementUnit:
    def test_consensus_is_silent(self):
        plan = {"granularity": "switch", "commands": [["update", "s1"]]}
        outcomes = {
            "incremental": {"status": "done", "seconds": 0.1, "plan": plan},
            "batch": {"status": "done", "seconds": 0.2, "plan": dict(plan)},
        }
        assert _judge_agreement("s", outcomes) == []

    def test_verdict_split_names_every_vote(self):
        outcomes = {
            "incremental": {"status": "done", "seconds": 0.1, "plan": {}},
            "symbolic": {"status": "infeasible", "seconds": 0.1},
        }
        (message,) = _judge_agreement("zoo/x/y", outcomes)
        assert "zoo/x/y: verdict split" in message
        assert "incremental=done" in message and "symbolic=infeasible" in message

    def test_plan_mismatch_flagged(self):
        outcomes = {
            "incremental": {
                "status": "done",
                "seconds": 0.1,
                "plan": {"granularity": "switch", "commands": [["update", "s1"]]},
            },
            "batch": {
                "status": "done",
                "seconds": 0.1,
                "plan": {"granularity": "switch", "commands": [["update", "s2"]]},
            },
        }
        (message,) = _judge_agreement("s", outcomes)
        assert "normalized plan differs" in message

    def test_shared_error_status_is_reported(self):
        outcomes = {
            "incremental": {"status": "error", "seconds": 0.0, "message": "boom"},
            "batch": {"status": "error", "seconds": 0.0, "message": "boom"},
        }
        messages = _judge_agreement("s", outcomes)
        assert len(messages) == 2
        assert all("errored" in m for m in messages)

    def test_unsupported_lone_voter_is_consensus(self):
        outcomes = {
            "netplumber": {"status": "unsupported", "seconds": 0.0, "message": "-"},
            "batch": {"status": "done", "seconds": 0.1, "plan": {}},
        }
        assert _judge_agreement("s", outcomes) == []


class TestJudgeRaceUnit:
    OUTCOMES = {
        "incremental": {"status": "done", "seconds": 0.01},
        "symbolic": {"status": "done", "seconds": 0.50},
    }

    def test_slow_winner_is_flagged(self):
        pick = {"status": "done", "winner": "symbolic", "seconds": 0.4}
        verdict = _judge_race("s", pick, self.OUTCOMES)
        assert verdict["flagged"] is True
        assert verdict["best_backend"] == "incremental"

    def test_best_winner_is_not_flagged(self):
        pick = {"status": "done", "winner": "incremental", "seconds": 0.02}
        assert _judge_race("s", pick, self.OUTCOMES)["flagged"] is False

    def test_noise_guards(self):
        # beyond the ratio but under the absolute gap: not flagged
        outcomes = {
            "incremental": {"status": "done", "seconds": 0.010},
            "symbolic": {"status": "done", "seconds": 0.040},
        }
        pick = {"status": "done", "winner": "symbolic", "seconds": 0.04}
        assert _judge_race("s", pick, outcomes)["flagged"] is False
        # beyond the gap but under the ratio: not flagged either
        outcomes = {
            "incremental": {"status": "done", "seconds": 1.00},
            "symbolic": {"status": "done", "seconds": 1.20},
        }
        pick = {"status": "done", "winner": "symbolic", "seconds": 1.2}
        assert _judge_race("s", pick, outcomes)["flagged"] is False

    def test_unjudgeable_picks_return_none(self):
        assert _judge_race("s", None, self.OUTCOMES) is None
        assert (
            _judge_race("s", {"status": "done", "winner": None}, self.OUTCOMES)
            is None
        )
        # the winner's solo verdict differs from the race's: timings not
        # comparable, so no judgement
        mixed = {
            "incremental": {"status": "done", "seconds": 0.01},
            "symbolic": {"status": "timeout", "seconds": 60.0},
        }
        pick = {"status": "done", "winner": "symbolic", "seconds": 0.1}
        assert _judge_race("s", pick, mixed) is None


class TestCli:
    def test_honest_judge_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "JUDGE.json"
        code = main(
            ["judge", "--suite", "smoke", "--quick",
             "--backends", BACKENDS, "--max-scenarios", "4",
             "--no-race", "--out", str(out)]
        )
        assert code == 0
        assert "OK: all backends agree" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["schema"] == JUDGE_SCHEMA
        assert document["totals"]["ok"] is True

    def test_injected_disagreement_exits_nonzero_and_names_scenario(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(judge_mod, "_execute_one", _lying_execute_one)
        code = main(
            ["judge", "--suite", "smoke", "--quick",
             "--backends", BACKENDS, "--max-scenarios", "3", "--no-race"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DISAGREED" in out
        assert "verdict split" in out
        # the dissenting scenario is named, verbatim, in the summary
        sampled = sample_records(generate_corpus("smoke", quick=True), 3)
        assert any(record.scenario_id in out for record in sampled)

    def test_judge_json_output(self, capsys):
        code = main(
            ["judge", "--suite", "smoke", "--quick",
             "--backends", BACKENDS, "--max-scenarios", "2",
             "--no-race", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == JUDGE_SCHEMA
        assert document["backends"] == ["incremental", "batch"]

    def test_single_backend_rejected(self, capsys):
        code = main(
            ["judge", "--suite", "smoke", "--quick", "--backends", "incremental"]
        )
        assert code == 1
        assert "at least two backends" in capsys.readouterr().err
