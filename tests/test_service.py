"""Tests for the batch synthesis service (repro.service)."""

import json

import pytest

from repro.cli import main
from repro.errors import ParseError, ReproError
from repro.net.commands import RuleGranUpdate, SwitchUpdate, Wait
from repro.net.fields import TrafficClass
from repro.net.rules import Forward, Pattern, Rule, Table
from repro.net.serialize import (
    Problem,
    command_from_dict,
    command_to_dict,
    plan_from_dict,
    plan_to_dict,
    problem_from_dict,
    problem_to_dict,
)
from repro.service import (
    JobStatus,
    PlanCache,
    SynthesisOptions,
    SynthesisService,
    disk_cache_summary,
    problem_fingerprint,
)
from repro.synthesis.plan import UpdatePlan
from repro.topo import double_diamond, mini_datacenter, ring_diamond

TC = TrafficClass.make("h1_to_h3", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
SPEC = "dst=H3 => F at(H3)"


def fig1_problem(spec_text=SPEC):
    from repro.ltl.parser import parse
    from repro.net.config import Configuration

    topo = mini_datacenter()
    return Problem(
        topology=topo,
        ingresses={TC: ["H1"]},
        init=Configuration.from_paths(topo, {TC: RED}),
        final=Configuration.from_paths(topo, {TC: GREEN}),
        spec=parse(spec_text),
        spec_text=spec_text,
    )


def scenario_problem(scenario):
    return Problem(
        topology=scenario.topology,
        ingresses={tc: list(h) for tc, h in scenario.ingresses.items()},
        init=scenario.init,
        final=scenario.final,
        spec=scenario.spec,
        spec_text=str(scenario.spec),
    )


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_across_object_identity(self):
        assert problem_fingerprint(fig1_problem()) == problem_fingerprint(
            fig1_problem()
        )

    def test_insensitive_to_link_rule_and_class_order(self):
        data = problem_to_dict(fig1_problem())
        shuffled = json.loads(json.dumps(data))
        shuffled["topology"]["links"] = list(reversed(shuffled["topology"]["links"]))
        # flip one link's endpoint orientation too
        a, b, pa, pb = shuffled["topology"]["links"][0]
        shuffled["topology"]["links"][0] = [b, a, pb, pa]
        shuffled["topology"]["switches"] = list(
            reversed(shuffled["topology"]["switches"])
        )
        for table in shuffled["init"].values():
            table.reverse()
        shuffled["classes"] = list(reversed(shuffled["classes"]))
        assert problem_fingerprint(problem_from_dict(data)) == problem_fingerprint(
            problem_from_dict(shuffled)
        )

    def test_insensitive_to_spec_formatting(self):
        assert problem_fingerprint(
            fig1_problem("dst=H3 => F at(H3)")
        ) == problem_fingerprint(fig1_problem("dst=H3   =>  (F at(H3))"))

    def test_sensitive_to_content(self):
        base = problem_fingerprint(fig1_problem())
        assert problem_fingerprint(fig1_problem("dst=H3 => F at(A1)")) != base

    def test_options_change_fingerprint_but_timeout_does_not(self):
        problem = fig1_problem()
        a = problem_fingerprint(problem, {"granularity": "switch", "timeout": 1})
        b = problem_fingerprint(problem, {"granularity": "switch", "timeout": 99})
        c = problem_fingerprint(problem, {"granularity": "rule"})
        assert a == b
        assert a != c


# ----------------------------------------------------------------------
# plan (de)serialization
# ----------------------------------------------------------------------
class TestPlanRoundTrip:
    def make_plan(self):
        table = Table([Rule(1, Pattern.make(dst="H3"), (Forward(2),))])
        return UpdatePlan(
            [
                SwitchUpdate("T1", table),
                Wait(),
                RuleGranUpdate("A1", TC, table),
            ],
            granularity="rule",
        )

    def test_plan_roundtrip(self):
        plan = self.make_plan()
        plan.stats.shards = 4
        clone = plan_from_dict(plan_to_dict(plan), {TC.name: TC})
        assert clone.granularity == "rule"
        assert clone.commands == plan.commands
        assert clone.stats.shards == 4

    def test_unknown_class_falls_back_to_nameonly(self):
        data = command_to_dict(RuleGranUpdate("A1", TC, Table([])))
        command = command_from_dict(data)
        assert isinstance(command, RuleGranUpdate)
        assert command.tc.name == TC.name
        assert command.tc.fields == ()

    def test_bad_command_rejected(self):
        with pytest.raises(ParseError):
            command_from_dict({"op": "noop"})


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        plans = {k: UpdatePlan([]) for k in "abc"}
        for key, plan in plans.items():
            cache.put(key, plan)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("a") is None  # evicted
        assert cache.get("c") is not None

    def test_get_returns_fresh_objects(self):
        cache = PlanCache()
        cache.put("k", UpdatePlan([Wait()]))
        first = cache.get("k")
        second = cache.get("k")
        assert first is not second
        assert first.commands == second.commands

    def test_disk_tier_survives_new_instance(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = PlanCache(capacity=4, directory=directory)
        cache.put("deadbeef", UpdatePlan([Wait()]))
        cache.persist_stats()

        fresh = PlanCache(capacity=4, directory=directory)
        plan = fresh.get("deadbeef")
        assert plan is not None
        assert fresh.stats.disk_hits == 1

        summary = disk_cache_summary(directory)
        assert summary["entries"] == 1
        assert summary["total_bytes"] > 0
        assert summary["counters"]["puts"] == 1

    def test_persist_stats_accumulates(self, tmp_path):
        directory = str(tmp_path / "cache")
        for _ in range(2):
            cache = PlanCache(directory=directory)
            cache.put("k", UpdatePlan([]))
            cache.persist_stats()
        assert disk_cache_summary(directory)["counters"]["puts"] == 2

    def test_persist_stats_closes_lock_handle_when_flock_fails(
        self, tmp_path, monkeypatch
    ):
        """Regression: a lock file opened successfully must be closed when
        flock itself refuses — the lockless fallback used to leak the fd.
        The fallback also warns (once per process), instead of silently
        risking lost increments."""
        import builtins
        import fcntl

        from repro.service import cache as cache_module

        def refuse_flock(handle, flags):
            raise OSError("locks not supported here")

        opened = []
        real_open = builtins.open

        def tracking_open(path, *args, **kwargs):
            handle = real_open(path, *args, **kwargs)
            if str(path).endswith(".lock"):
                opened.append(handle)
            return handle

        monkeypatch.setattr(fcntl, "flock", refuse_flock)
        monkeypatch.setattr(builtins, "open", tracking_open)
        monkeypatch.setattr(cache_module, "_warned_lockless", False)
        cache = PlanCache(directory=str(tmp_path / "cache"))
        cache.put("k", UpdatePlan([]))
        with pytest.warns(RuntimeWarning, match="lockless"):
            cache.persist_stats()
        assert len(opened) == 1 and opened[0].closed
        # the stats still merged, and the warning fires only once
        assert disk_cache_summary(str(tmp_path / "cache"))["counters"]["puts"] == 1
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            cache.persist_stats()


# ----------------------------------------------------------------------
# the service engine
# ----------------------------------------------------------------------
class TestServiceSerial:
    def test_cache_hit_on_identical_problem_different_identity(self):
        service = SynthesisService(workers=0)
        first = service.run_problems([fig1_problem()])[0]
        assert first.status is JobStatus.DONE and not first.cached
        # an equal problem rebuilt from scratch (different object identity)
        clone = problem_from_dict(problem_to_dict(fig1_problem()))
        second = service.run_problems([clone])[0]
        assert second.status is JobStatus.DONE and second.cached
        assert second.fingerprint == first.fingerprint
        assert plan_to_dict(second.plan) == plan_to_dict(first.plan)
        assert service.cache.stats.hits == 1

    def test_batch_with_infeasible_and_timeout(self):
        service = SynthesisService(workers=0)
        ok_job = service.submit(fig1_problem(), job_id="ok")
        service.submit(
            scenario_problem(double_diamond(8, seed=1)), job_id="impossible"
        )
        service.submit(
            scenario_problem(ring_diamond(8, seed=2)), job_id="slow", timeout=0.0
        )
        results = {r.job_id: r for r in service.stream()}
        assert results["ok"].status is JobStatus.DONE
        assert results["impossible"].status is JobStatus.INFEASIBLE
        assert results["slow"].status is JobStatus.TIMEOUT
        assert ok_job.status is JobStatus.DONE
        # failures are never cached
        assert len(service.cache) == 1
        metrics = service.metrics_dict()
        assert metrics["completed"] == 3
        assert metrics["by_status"] == {"done": 1, "infeasible": 1, "timeout": 1}

    def test_duplicate_jobs_coalesce(self):
        service = SynthesisService(workers=0)
        service.submit(fig1_problem(), job_id="a")
        service.submit(fig1_problem(), job_id="b")
        results = {r.job_id: r for r in service.stream()}
        assert results["a"].status is JobStatus.DONE
        assert results["b"].status is JobStatus.DONE
        assert service.metrics.coalesced == 1
        assert "coalesced" in results["b"].message

    def test_different_timeouts_do_not_coalesce(self):
        # a "timeout" verdict under a tiny budget must not be fanned out to
        # an identical job submitted with a generous (or absent) budget
        service = SynthesisService(workers=0)
        problem = scenario_problem(ring_diamond(8, seed=2))
        service.submit(problem, job_id="tiny", timeout=0.0)
        service.submit(problem, job_id="patient")
        results = {r.job_id: r for r in service.stream()}
        assert results["tiny"].status is JobStatus.TIMEOUT
        assert results["patient"].status is JobStatus.DONE
        assert service.metrics.coalesced == 0

    def test_portfolio_takes_first_definitive(self):
        service = SynthesisService(workers=0)
        service.submit(
            fig1_problem(),
            options=SynthesisOptions(portfolio=("incremental", "batch")),
        )
        result = service.run()[0]
        assert result.status is JobStatus.DONE
        assert result.backend in ("incremental", "batch")

    def test_run_preserves_submission_order(self):
        service = SynthesisService(workers=0)
        service.submit(scenario_problem(ring_diamond(6, seed=1)), job_id="one")
        service.submit(fig1_problem(), job_id="two")
        assert [r.job_id for r in service.run()] == ["one", "two"]


class TestServicePool:
    def test_pool_batch_over_examples(self):
        service = SynthesisService(workers=2)
        service.submit(fig1_problem(), job_id="ok")
        service.submit(
            scenario_problem(ring_diamond(6, seed=3)), job_id="ring"
        )
        service.submit(
            scenario_problem(double_diamond(8, seed=1)), job_id="impossible"
        )
        service.submit(
            scenario_problem(ring_diamond(10, seed=4)), job_id="slow", timeout=0.0
        )
        results = {r.job_id: r for r in service.stream()}
        assert results["ok"].status is JobStatus.DONE
        assert results["ring"].status is JobStatus.DONE
        assert results["impossible"].status is JobStatus.INFEASIBLE
        assert results["slow"].status is JobStatus.TIMEOUT
        assert results["ok"].plan is not None
        assert results["ok"].plan.num_updates() > 0

    def test_pool_portfolio_race(self):
        service = SynthesisService(workers=2)
        service.submit(
            scenario_problem(double_diamond(8, seed=1)),
            options=SynthesisOptions(portfolio=("incremental", "batch")),
        )
        result = service.run()[0]
        assert result.status is JobStatus.INFEASIBLE

    def test_pool_memo_sharing_matches_serial(self):
        """Regression: pool-mode payloads must carry the service's verdict
        memo — workers used to run memo-blind while the serial path shared.

        A 2-job batch on one memo scope (same topology, ingresses, spec;
        forward and reverse updates) must report the same plans and non-zero
        memo hit counters whether it runs serially or on the pool.
        """
        from repro.scenarios import generate_corpus

        records = generate_corpus("smoke", quick=True)
        record = next(
            r for r in records if r.scenario_id == "diamond/chained2x2/chain/baseline"
        )
        forward = record.problem
        reverse = Problem(
            topology=forward.topology,
            ingresses=forward.ingresses,
            init=forward.final,
            final=forward.init,
            spec=forward.spec,
            spec_text=forward.spec_text,
        )
        plans = {}
        for workers in (0, 2):
            service = SynthesisService(workers=workers)
            opts = SynthesisOptions(granularity=record.granularity)
            service.submit(forward, job_id="fwd", options=opts)
            service.submit(reverse, job_id="rev", options=opts)
            results = {r.job_id: r for r in service.stream()}
            for result in results.values():
                assert result.status is JobStatus.DONE
                assert result.plan.stats.memo_hits > 0, (
                    f"workers={workers}: job ran memo-blind"
                )
            plans[workers] = {
                job_id: (result.plan.granularity, list(result.plan.commands))
                for job_id, result in results.items()
            }
        assert plans[0] == plans[2]

    def test_pool_merges_worker_deltas_into_service_memo(self):
        """Workers return their learned memo delta; the engine folds it into
        the service pool, so service-level counters see worker activity and
        later-dispatched jobs inherit earlier jobs' verdicts."""
        from repro.scenarios import generate_corpus

        records = generate_corpus("smoke", quick=True)
        record = next(
            r for r in records if r.scenario_id == "diamond/chained2x2/chain/baseline"
        )
        forward = record.problem
        reverse = Problem(
            topology=forward.topology,
            ingresses=forward.ingresses,
            init=forward.final,
            final=forward.init,
            spec=forward.spec,
            spec_text=forward.spec_text,
        )
        service = SynthesisService(workers=2)
        opts = SynthesisOptions(granularity=record.granularity)
        service.submit(forward, job_id="fwd", options=opts)
        service.submit(reverse, job_id="rev", options=opts)
        # same problem under a different budget: a third group on the same
        # memo scope, dispatched after a slot frees up — it starts from the
        # merged deltas of whichever sibling finished first
        service.submit(forward, job_id="warm", options=opts, timeout=120.0)
        results = {r.job_id: r for r in service.stream()}
        assert all(r.status is JobStatus.DONE for r in results.values())
        memo = service.metrics_dict()["verdict_memo"]
        assert memo["merged"] > 0, "no worker delta reached the service pool"
        assert memo["hits"] > 0
        assert memo["scopes"] == 1


class TestServiceShards:
    def test_sharded_job_finds_a_valid_plan(self):
        service = SynthesisService(workers=2)
        service.submit(
            scenario_problem(ring_diamond(8, seed=2)),
            job_id="hard",
            options=SynthesisOptions(shards=4),
        )
        result = service.run()[0]
        assert result.status is JobStatus.DONE
        assert result.plan.stats.shards == 4
        assert result.plan.num_updates() > 0

    def test_single_sharded_job_uses_the_pool(self):
        # one job, one backend, shards=4 → 4 tasks: worth spinning up the
        # pool even though there is only one job (the point of sharding)
        service = SynthesisService(workers=2)
        service.submit(
            fig1_problem(), options=SynthesisOptions(shards=4)
        )
        result = service.run()[0]
        assert result.status is JobStatus.DONE
        assert result.plan.stats.shards == 4

    def test_all_shards_exhausted_is_global_infeasibility(self):
        service = SynthesisService(workers=2)
        service.submit(
            scenario_problem(double_diamond(8, seed=1)),
            job_id="impossible",
            options=SynthesisOptions(shards=3, use_early_termination=False),
        )
        result = service.run()[0]
        assert result.status is JobStatus.INFEASIBLE
        assert "shard" in result.message

    def test_serial_path_ignores_sharding(self):
        service = SynthesisService(workers=0)
        service.submit(fig1_problem(), options=SynthesisOptions(shards=4))
        result = service.run()[0]
        assert result.status is JobStatus.DONE
        assert result.plan.stats.shards == 0  # ran unsharded


class TestServicePoolFailures:
    """The pool path must settle every job — no job left RUNNING — under
    worker errors, race cancellations, and a breaking pool."""

    def assert_all_settled(self, jobs, results):
        assert set(results) == {job.job_id for job in jobs}
        for job in jobs:
            assert job.status.terminal, f"{job.job_id} left {job.status}"

    def test_worker_error_settles_the_job(self):
        service = SynthesisService(workers=2)
        jobs = [
            service.submit(
                fig1_problem(),
                job_id="boom",
                options=SynthesisOptions(checker="no-such-backend"),
            ),
            service.submit(fig1_problem(), job_id="ok"),
        ]
        results = {r.job_id: r for r in service.stream()}
        self.assert_all_settled(jobs, results)
        assert results["boom"].status is JobStatus.ERROR
        assert results["ok"].status is JobStatus.DONE

    def test_portfolio_cancellation_across_groups(self):
        # two portfolio groups on two workers: each group's first definitive
        # verdict cancels (or skips) the sibling backend's payload
        service = SynthesisService(workers=2)
        opts = SynthesisOptions(portfolio=("incremental", "batch"))
        jobs = [
            service.submit(fig1_problem(), job_id="feasible", options=opts),
            service.submit(
                scenario_problem(double_diamond(8, seed=1)),
                job_id="impossible",
                options=opts,
            ),
        ]
        results = {r.job_id: r for r in service.stream()}
        self.assert_all_settled(jobs, results)
        assert results["feasible"].status is JobStatus.DONE
        assert results["impossible"].status is JobStatus.INFEASIBLE

    def test_broken_process_pool_mid_batch_degrades_inline(self, monkeypatch):
        """First submission's worker dies, the next submission raises
        BrokenProcessPool: remaining payloads must run inline and every job
        must still settle."""
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        from repro.service import engine as engine_module

        class BreakingExecutor:
            def __init__(self, max_workers):
                self.calls = 0

            def submit(self, fn, *args, **kwargs):
                self.calls += 1
                if self.calls == 1:
                    future = Future()
                    future.set_exception(BrokenProcessPool("worker died"))
                    return future
                raise BrokenProcessPool("pool is dead")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", BreakingExecutor)
        service = SynthesisService(workers=2)
        jobs = [
            service.submit(fig1_problem(), job_id="first"),
            service.submit(
                scenario_problem(ring_diamond(6, seed=3)), job_id="second"
            ),
            service.submit(
                scenario_problem(double_diamond(8, seed=1)), job_id="third"
            ),
        ]
        results = {r.job_id: r for r in service.stream()}
        self.assert_all_settled(jobs, results)
        assert results["first"].status is JobStatus.ERROR
        assert "BrokenProcessPool" in results["first"].message
        assert results["second"].status is JobStatus.DONE
        assert results["third"].status is JobStatus.INFEASIBLE


# ----------------------------------------------------------------------
# the continuous scheduler
# ----------------------------------------------------------------------
class TestContinuousScheduler:
    def test_submit_during_active_stream_settles_every_job(self):
        """Acceptance: submit() while a stream is consuming is legal; the
        late job is executed by the running scheduler and nothing is left
        RUNNING (or QUEUED) after a drain."""
        service = SynthesisService(workers=0)
        service.submit(fig1_problem(), job_id="early-1")
        service.submit(
            scenario_problem(ring_diamond(6, seed=1)), job_id="early-2"
        )
        stream = service.stream()
        first = next(stream)  # the scheduler is live now
        late = service.submit(
            scenario_problem(ring_diamond(8, seed=2)), job_id="late"
        )
        streamed = [first] + list(stream)
        # the stream claimed only the jobs present when it started
        assert {r.job_id for r in streamed} == {"early-1", "early-2"}
        late_result = service.result("late", timeout=60)
        assert late_result.status is JobStatus.DONE
        assert late.status is JobStatus.DONE
        assert all(status.terminal for status in service.poll().values())

    def test_result_poll_and_drain(self):
        service = SynthesisService(workers=0)
        service.submit(fig1_problem(), job_id="a")
        service.submit(
            scenario_problem(double_diamond(8, seed=1)), job_id="b"
        )
        assert service.poll() == {
            "a": JobStatus.QUEUED, "b": JobStatus.QUEUED,
        }
        assert service.result("a", timeout=60).status is JobStatus.DONE
        results = service.drain(timeout=60)
        assert [r.job_id for r in results] == ["a", "b"]
        assert results[1].status is JobStatus.INFEASIBLE
        assert all(status.terminal for status in service.poll().values())
        with pytest.raises(KeyError):
            service.result("nonexistent")

    def test_cancel_queued_job_before_scheduler_starts(self):
        service = SynthesisService(workers=0)
        job = service.submit(fig1_problem(), job_id="victim")
        assert service.cancel("victim") is True
        assert job.status is JobStatus.CANCELLED
        result = service.try_result("victim")
        assert result is not None and result.status is JobStatus.CANCELLED
        # a settled job cannot be cancelled again
        assert service.cancel("victim") is False
        # the stream delivers the cancellation like any other verdict
        assert [r.status for r in service.stream()] == [JobStatus.CANCELLED]

    def test_duplicate_open_id_rejected_settled_id_replaced(self):
        service = SynthesisService(workers=0)
        service.submit(fig1_problem(), job_id="j")
        with pytest.raises(ReproError, match="duplicate"):
            service.submit(fig1_problem(), job_id="j")
        first = service.result("j", timeout=60)
        assert first.status is JobStatus.DONE and not first.cached
        # a settled id starts a new generation — served from the warm cache
        service.submit(fig1_problem(), job_id="j")
        second = service.result("j", timeout=60)
        assert second.status is JobStatus.DONE and second.cached

    def test_close_cancels_queued_jobs(self):
        service = SynthesisService(workers=0)
        job = service.submit(fig1_problem(), job_id="doomed")
        service.close()
        assert job.status is JobStatus.CANCELLED
        with pytest.raises(ReproError, match="closed"):
            service.submit(fig1_problem())

    def test_context_manager_runs_then_closes(self):
        with SynthesisService(workers=0) as service:
            result = service.result(
                service.submit(fig1_problem()).job_id, timeout=60
            )
            assert result.status is JobStatus.DONE
        with pytest.raises(ReproError, match="closed"):
            service.start()

    def test_metrics_gauges_serialize(self):
        service = SynthesisService(workers=0)
        service.run_problems([fig1_problem()])
        metrics = service.metrics_dict()
        gauges = metrics["gauges"]
        assert gauges["queue_depth"] == 0
        assert gauges["in_flight"] == 0
        assert gauges["memo_scopes"] == 1
        assert gauges["uptime_seconds"] >= 0.0
        json.dumps(metrics)  # the whole document must be JSON-safe

    def test_eviction_forgets_unclaimed_settled_results(self, monkeypatch):
        """Fire-and-forget submissions (settled, never claimed) must be
        evictable, or a long-lived server grows without bound."""
        import repro.service.engine as engine_module

        monkeypatch.setattr(engine_module, "RESULT_RETENTION", 2)
        service = SynthesisService(workers=0)
        service.start()
        for index in range(5):
            service.submit(fig1_problem(), job_id=f"forgotten-{index}")
        service.wait_idle(timeout=60)
        service.submit(fig1_problem(), job_id="last")
        service.result("last", timeout=60)
        known = service.poll()
        assert len(known) <= 3  # retention bound (+ the in-flight margin)
        assert "last" in known
        assert "forgotten-0" not in known
        with pytest.raises(KeyError):
            service.try_result("forgotten-0")
        service.close()

    def test_crash_during_cache_lookup_settles_the_batch(self, monkeypatch):
        """A corrupt cache entry (lookup raises) must settle the drained
        jobs as errors, not kill the scheduler with waiters blocked."""
        service = SynthesisService(workers=0)

        def broken_get(fingerprint, classes=None):
            raise TypeError("corrupt cache entry")

        monkeypatch.setattr(service.cache, "get", broken_get)
        service.submit(fig1_problem(), job_id="victim")
        result = service.result("victim", timeout=60)
        assert result.status is JobStatus.ERROR
        assert "corrupt cache entry" in result.message
        service.close()

    def test_coalesced_siblings_report_running(self, monkeypatch):
        """Every job of an executing fingerprint group must show RUNNING —
        a 'queued' sibling of a running execution misleads monitoring."""
        import threading

        import repro.service.engine as engine_module

        gate = threading.Event()
        entered = threading.Event()
        original = engine_module._execute_payload

        def gated(problem_data, options_data, backend, **kwargs):
            entered.set()
            gate.wait(timeout=60)
            return original(problem_data, options_data, backend, **kwargs)

        monkeypatch.setattr(engine_module, "_execute_payload", gated)
        service = SynthesisService(workers=0)
        service.submit(fig1_problem(), job_id="a")
        service.submit(fig1_problem(), job_id="b")  # same fingerprint
        service.start()
        assert entered.wait(timeout=60)
        statuses = service.poll()
        assert statuses["a"] is JobStatus.RUNNING
        assert statuses["b"] is JobStatus.RUNNING
        gate.set()
        service.drain(timeout=60)
        service.close()

    def test_consumer_started_scheduler_exits_when_idle(self):
        """Batch-style use must not leak a parked scheduler thread."""
        import threading
        import time

        def scheduler_threads():
            return [
                thread
                for thread in threading.enumerate()
                if thread.name == "repro-scheduler" and thread.is_alive()
            ]

        before = len(scheduler_threads())
        service = SynthesisService(workers=0)
        service.run_problems([fig1_problem()])
        for _ in range(100):  # the thread exits asynchronously
            if len(scheduler_threads()) <= before:
                break
            time.sleep(0.02)
        assert len(scheduler_threads()) <= before
        # ...and a later consumer transparently restarts it
        service.submit(fig1_problem(), job_id="again")
        assert service.result("again", timeout=60).status is JobStatus.DONE

    def test_result_waiter_protected_from_eviction(self, monkeypatch):
        """A result() caller blocked on a job must receive its result even
        under the most aggressive retention pressure."""
        import repro.service.engine as engine_module

        monkeypatch.setattr(engine_module, "RESULT_RETENTION", 0)
        service = SynthesisService(workers=0)
        service.submit(fig1_problem(), job_id="watched")
        result = service.result("watched", timeout=60)
        assert result.status is JobStatus.DONE
        service.close()

    def test_in_flight_attach_coalesces_independent_submissions(self, monkeypatch):
        """A submission matching a currently-executing fingerprint attaches
        to that execution instead of running again."""
        import threading

        import repro.service.engine as engine_module

        gate = threading.Event()
        entered = threading.Event()
        original = engine_module._execute_payload

        def gated(problem_data, options_data, backend, **kwargs):
            entered.set()
            gate.wait(timeout=60)
            return original(problem_data, options_data, backend, **kwargs)

        monkeypatch.setattr(engine_module, "_execute_payload", gated)
        service = SynthesisService(workers=0)
        service.submit(fig1_problem(), job_id="first")
        service.start()
        assert entered.wait(timeout=60)
        # the scheduler is inside "first"'s execution: this submission
        # attaches to the in-flight group
        attached = service.submit(fig1_problem(), job_id="attached")
        assert attached.status is JobStatus.RUNNING
        gate.set()
        results = {r.job_id: r for r in service.drain(timeout=60)}
        assert results["first"].status is JobStatus.DONE
        assert results["attached"].status is JobStatus.DONE
        assert "coalesced" in results["attached"].message
        assert service.metrics.coalesced == 1
        service.close()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestBatchCli:
    def write_jsonl(self, tmp_path, docs):
        path = tmp_path / "problems.jsonl"
        path.write_text("".join(json.dumps(d) + "\n" for d in docs))
        return str(path)

    def batch_docs(self):
        ok = problem_to_dict(fig1_problem())
        ok["id"] = "ok"
        bad = problem_to_dict(scenario_problem(double_diamond(8, seed=1)))
        bad["id"] = "impossible"
        slow = problem_to_dict(scenario_problem(ring_diamond(8, seed=2)))
        slow["id"] = "slow"
        slow["timeout"] = 0.0
        return [ok, bad, slow]

    def test_batch_streams_jsonl(self, tmp_path, capsys):
        path = self.write_jsonl(tmp_path, self.batch_docs())
        assert main(["batch", path, "--serial", "--no-plans"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        by_id = {entry["id"]: entry for entry in lines}
        assert by_id["ok"]["status"] == "done"
        assert by_id["impossible"]["status"] == "infeasible"
        assert by_id["slow"]["status"] == "timeout"
        assert all("plan" not in entry for entry in lines)

    def test_batch_includes_plans_and_warm_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        path = self.write_jsonl(tmp_path, self.batch_docs()[:1])
        assert main(["batch", path, "--serial", "--cache-dir", cache_dir]) == 0
        first = json.loads(capsys.readouterr().out.splitlines()[0])
        assert first["cached"] is False
        assert first["plan"]["commands"]

        assert main(["batch", path, "--serial", "--cache-dir", cache_dir]) == 0
        second = json.loads(capsys.readouterr().out.splitlines()[0])
        assert second["cached"] is True
        assert second["plan"] == first["plan"]

    def test_cache_stats_subcommand(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        path = self.write_jsonl(tmp_path, self.batch_docs()[:1])
        main(["batch", path, "--serial", "--cache-dir", cache_dir, "--no-plans"])
        capsys.readouterr()
        assert main(["cache-stats", cache_dir]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["entries"] == 1
        assert summary["counters"]["puts"] == 1

    def test_batch_parse_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        assert main(["batch", str(path)]) == 4

    def test_batch_rejects_non_numeric_timeout(self, tmp_path, capsys):
        doc = problem_to_dict(fig1_problem())
        doc["timeout"] = "5"
        path = self.write_jsonl(tmp_path, [doc])
        assert main(["batch", path]) == 4
        assert "'timeout' must be a number" in capsys.readouterr().err

    def test_batch_rejects_unknown_portfolio_backend(self, tmp_path, capsys):
        path = self.write_jsonl(tmp_path, self.batch_docs()[:1])
        with pytest.raises(SystemExit):
            main(["batch", path, "--portfolio", "increnemtal"])
        assert "unknown backend" in capsys.readouterr().err

    def test_batch_shards_flag(self, tmp_path, capsys):
        path = self.write_jsonl(tmp_path, self.batch_docs()[:1])
        assert main(["batch", path, "--workers", "2", "--shards", "2"]) == 0
        entry = json.loads(capsys.readouterr().out.splitlines()[0])
        assert entry["status"] == "done"
        assert entry["plan"]["stats"]["shards"] == 2

    def test_batch_rejects_bad_shards(self, tmp_path, capsys):
        path = self.write_jsonl(tmp_path, self.batch_docs()[:1])
        assert main(["batch", path, "--shards", "0"]) == 4
        assert "--shards" in capsys.readouterr().err

    def test_batch_serial_shards_warns(self, tmp_path, capsys):
        path = self.write_jsonl(tmp_path, self.batch_docs()[:1])
        assert main(["batch", path, "--serial", "--shards", "2",
                     "--no-plans"]) == 0
        captured = capsys.readouterr()
        assert "running unsharded" in captured.err
        assert json.loads(captured.out.splitlines()[0])["status"] == "done"

    def test_batch_portfolio_accepts_spaces(self, tmp_path, capsys):
        path = self.write_jsonl(tmp_path, self.batch_docs()[:1])
        assert main(["batch", path, "--serial", "--no-plans",
                     "--portfolio", "incremental, batch"]) == 0
        entry = json.loads(capsys.readouterr().out.splitlines()[0])
        assert entry["status"] == "done"

    def test_synthesize_exit_codes(self, tmp_path, capsys):
        from repro.net.serialize import save_problem

        infeasible = tmp_path / "infeasible.json"
        save_problem(scenario_problem(double_diamond(8, seed=1)), str(infeasible))
        assert main(["synthesize", str(infeasible)]) == 2

        feasible = tmp_path / "feasible.json"
        save_problem(fig1_problem(), str(feasible))
        assert main(["synthesize", str(feasible), "--timeout", "0"]) == 3

        bad = tmp_path / "bad.json"
        bad.write_text("{]")
        assert main(["synthesize", str(bad)]) == 4
