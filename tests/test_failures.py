"""Tests for the link-failure extension and plan robustness analysis."""

import pytest

from repro import Configuration, TrafficClass, UpdateSynthesizer, specs
from repro.errors import TopologyError
from repro.kripke.structure import KripkeStructure
from repro.mc import make_checker
from repro.net.failures import fail_link, links_used
from repro.synthesis.robust import robustness_report
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
GREEN = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]


@pytest.fixture
def scenario():
    topo = mini_datacenter()
    init = Configuration.from_paths(topo, {TC: RED})
    final = Configuration.from_paths(topo, {TC: GREEN})
    return topo, init, final


class TestFailLink:
    def test_failed_link_disappears(self, scenario):
        topo, _, _ = scenario
        degraded = fail_link(topo, ("A1", "C1"))
        assert not degraded.are_adjacent("A1", "C1")
        # everything else intact, ports preserved
        assert degraded.are_adjacent("A1", "C2")
        assert degraded.port_to("T1", "A1") == topo.port_to("T1", "A1")

    def test_multiple_failures(self, scenario):
        topo, _, _ = scenario
        degraded = fail_link(topo, ("A1", "C1"), ("A1", "C2"))
        assert not degraded.are_adjacent("A1", "C1")
        assert not degraded.are_adjacent("A1", "C2")

    def test_unknown_link_rejected(self, scenario):
        topo, _, _ = scenario
        with pytest.raises(TopologyError):
            fail_link(topo, ("T1", "T3"))

    def test_failure_blackholes_traffic(self, scenario):
        """Rules survive the failure; packets into the dead port are lost."""
        topo, init, _ = scenario
        degraded = fail_link(topo, ("A1", "C1"))
        ks = KripkeStructure(degraded, init, {TC: ["H1"]})
        result = make_checker("incremental", ks, specs.reachability(TC, "H3")).full_check()
        assert not result.ok
        assert any(s.dropped for s in result.counterexample)

    def test_links_used(self, scenario):
        topo, init, _ = scenario
        used = {frozenset(link) for link in links_used(topo, init)}
        assert frozenset(("T1", "A1")) in used
        assert frozenset(("A1", "C1")) in used
        # T3 only forwards to the host H3
        assert frozenset(("T3", "A4")) not in used


class TestRobustnessReport:
    def test_single_path_plan_is_fragile(self, scenario):
        """A single-path configuration cannot survive failures on its own
        path: the report must flag those links, not crash."""
        topo, init, final = scenario
        plan = UpdateSynthesizer(topo).synthesize(
            init, final, specs.reachability(TC, "H3"), {TC: ["H1"]}
        )
        report = robustness_report(
            topo, init, plan, {TC: ["H1"]}, specs.reachability(TC, "H3")
        )
        assert not report.is_fully_robust()
        # the shared T1-A1 hop is fragile at every stage
        assert ("T1", "A1") in report.fragile_links() or (
            "A1",
            "T1",
        ) in report.fragile_links()
        assert 0 in report.fragile_stages()

    def test_unused_links_survive(self, scenario):
        topo, init, final = scenario
        plan = UpdateSynthesizer(topo).synthesize(
            init, final, specs.reachability(TC, "H3"), {TC: ["H1"]}
        )
        report = robustness_report(
            topo, init, plan, {TC: ["H1"]}, specs.reachability(TC, "H3"),
            links=[("A2", "C1")],  # never carries this flow
        )
        assert report.is_fully_robust()
        assert report.survival_rate() == 1.0

    def test_host_links_skipped(self, scenario):
        topo, init, final = scenario
        plan = UpdateSynthesizer(topo).synthesize(
            init, final, specs.reachability(TC, "H3"), {TC: ["H1"]}
        )
        report = robustness_report(
            topo, init, plan, {TC: ["H1"]}, specs.reachability(TC, "H3"),
            links=[("H1", "T1")],
        )
        assert report.findings == []

    def test_trivial_spec_always_robust(self, scenario):
        from repro.ltl.syntax import TRUE

        topo, init, final = scenario
        plan = UpdateSynthesizer(topo).synthesize(init, final, TRUE, {TC: ["H1"]})
        report = robustness_report(topo, init, plan, {TC: ["H1"]}, TRUE)
        assert report.is_fully_robust()

    def test_findings_str(self, scenario):
        topo, init, final = scenario
        plan = UpdateSynthesizer(topo).synthesize(
            init, final, specs.reachability(TC, "H3"), {TC: ["H1"]}
        )
        report = robustness_report(
            topo, init, plan, {TC: ["H1"]}, specs.reachability(TC, "H3"),
            links=[("A1", "C1")],
        )
        assert any("fail A1-C1" in str(f) for f in report.findings)
