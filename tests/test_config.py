"""Tests for configurations and path-based rule construction."""

import pytest

from repro.errors import ConfigurationError
from repro.net.config import Configuration, next_hops, path_rules
from repro.net.fields import TrafficClass, packet_for_class
from repro.net.rules import Forward, Pattern, Rule, Table
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]


@pytest.fixture
def topo():
    return mini_datacenter()


class TestPathRules:
    def test_rules_follow_path(self, topo):
        rules = path_rules(topo, TC, RED)
        assert [sw for sw, _ in rules] == ["T1", "A1", "C1", "A3", "T3"]
        config = Configuration.from_paths(topo, {TC: RED})
        # walk the path via the semantics
        node, port = topo.attachment("H1")
        packet = packet_for_class(TC)
        visited = [node]
        for _ in range(10):
            outs = config.process(node, packet, port)
            assert len(outs) == 1
            _, out_port = outs[0]
            node, port = topo.peer(node, out_port)
            visited.append(node)
            if topo.is_host(node):
                break
        assert visited == RED[1:]

    def test_short_path_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            path_rules(topo, TC, ["H1", "H3"])

    def test_non_host_endpoints_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            path_rules(topo, TC, ["T1", "A1", "T3"])

    def test_non_adjacent_hop_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            path_rules(topo, TC, ["H1", "T1", "C1", "T3", "H3"])


class TestConfiguration:
    def test_empty_and_table(self, topo):
        config = Configuration.empty()
        assert config.total_rules() == 0
        assert len(config.table("T1")) == 0

    def test_with_table_functional(self, topo):
        config = Configuration.from_paths(topo, {TC: RED})
        rule = Rule(5, Pattern.make(), (Forward(1),))
        updated = config.with_table("T2", Table([rule]))
        assert updated.rule_count("T2") == 1
        assert config.rule_count("T2") == 0

    def test_with_empty_table_removes_switch(self, topo):
        config = Configuration.from_paths(topo, {TC: RED})
        cleared = config.with_table("T1", Table())
        assert "T1" not in cleared.switches()

    def test_diff_switches(self, topo):
        red = Configuration.from_paths(topo, {TC: RED})
        green = Configuration.from_paths(
            topo, {TC: ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]}
        )
        assert red.diff_switches(green) == frozenset({"A1", "C1", "C2"})

    def test_equality_and_hash(self, topo):
        a = Configuration.from_paths(topo, {TC: RED})
        b = Configuration.from_paths(topo, {TC: RED})
        assert a == b and hash(a) == hash(b)

    def test_multiple_classes_merge_rules(self, topo):
        other = TrafficClass.make("f24", src="H2", dst="H4")
        config = Configuration.from_paths(
            topo,
            {
                TC: RED,
                other: ["H2", "T2", "A2", "C1", "A4", "T4", "H4"],
            },
        )
        # C1 carries rules for both classes
        assert config.rule_count("C1") == 2


class TestNextHops:
    def test_next_hop_chain(self, topo):
        config = Configuration.from_paths(topo, {TC: RED})
        sw, pt = topo.attachment("H1")
        hops = next_hops(topo, config, sw, TC, pt)
        assert len(hops) == 1
        assert hops[0][0] == "A1"

    def test_next_hop_delivery(self, topo):
        config = Configuration.from_paths(topo, {TC: RED})
        port_from_a3 = topo.port_to("T3", "A3")
        hops = next_hops(topo, config, "T3", TC, port_from_a3)
        assert hops[0][0] == "H3"

    def test_no_rules_no_hops(self, topo):
        hops = next_hops(topo, Configuration.empty(), "T1", TC, 1)
        assert hops == []
