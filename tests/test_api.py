"""Tests for the ``repro-api/1`` wire schema (repro.api) and the shared
exit-code taxonomy (repro.errors)."""

import pytest

from repro.api import (
    API_VERSION,
    ErrorEnvelope,
    HeartbeatRequest,
    JobView,
    LeaseCompletion,
    LeaseGrant,
    LeaseRequest,
    SynthesisRequest,
    SynthesisResponse,
    memo_snapshot_from_wire,
    memo_snapshot_to_wire,
    options_from_dict,
    options_to_dict,
)
from repro.errors import (
    EXIT_FAILURE,
    EXIT_INFEASIBLE,
    EXIT_OK,
    EXIT_PARSE_ERROR,
    EXIT_TIMEOUT,
    ParseError,
    ReproError,
    SynthesisTimeout,
    UpdateInfeasibleError,
    error_code,
    exit_code_for,
)
from repro.ltl.parser import parse
from repro.net.commands import SwitchUpdate, Wait
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.net.rules import Forward, Pattern, Rule, Table
from repro.net.serialize import Problem, plan_to_dict, problem_to_dict
from repro.service import JobResult, JobStatus, SynthesisJob, SynthesisOptions
from repro.synthesis.plan import UpdatePlan
from repro.topo import mini_datacenter

TC = TrafficClass.make("h1_to_h3", src="H1", dst="H3")
SPEC = "dst=H3 => F at(H3)"


def fig1_problem() -> Problem:
    topo = mini_datacenter()
    red = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
    green = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
    return Problem(
        topology=topo,
        ingresses={TC: ["H1"]},
        init=Configuration.from_paths(topo, {TC: red}),
        final=Configuration.from_paths(topo, {TC: green}),
        spec=parse(SPEC),
        spec_text=SPEC,
    )


def make_plan() -> UpdatePlan:
    table = Table([Rule(100, Pattern((("dst", "H3"),)), (Forward(2),))])
    return UpdatePlan([SwitchUpdate("T1", table), Wait()])


# ----------------------------------------------------------------------
# exit-code taxonomy
# ----------------------------------------------------------------------
class TestExitCodes:
    def test_exception_families(self):
        assert exit_code_for(ParseError("x")) == EXIT_PARSE_ERROR
        assert exit_code_for(UpdateInfeasibleError("x")) == EXIT_INFEASIBLE
        assert exit_code_for(SynthesisTimeout("x")) == EXIT_TIMEOUT
        assert exit_code_for(ReproError("x")) == EXIT_FAILURE
        assert exit_code_for(ValueError("x")) == EXIT_FAILURE

    def test_status_families(self):
        assert exit_code_for("done") == EXIT_OK
        assert exit_code_for("infeasible") == EXIT_INFEASIBLE
        assert exit_code_for("timeout") == EXIT_TIMEOUT
        assert exit_code_for("error") == EXIT_FAILURE
        assert exit_code_for("cancelled") == EXIT_FAILURE
        assert exit_code_for("anything-else") == EXIT_FAILURE

    def test_every_job_status_maps(self):
        # the server envelope and `submit` exit with these — no status may
        # fall through to a surprising family when new statuses are added
        for status in JobStatus:
            if status.terminal:
                assert exit_code_for(status.value) in (
                    EXIT_OK, EXIT_FAILURE, EXIT_INFEASIBLE, EXIT_TIMEOUT,
                )

    def test_error_code_inverse(self):
        for code in (EXIT_OK, EXIT_FAILURE, EXIT_INFEASIBLE, EXIT_TIMEOUT,
                     EXIT_PARSE_ERROR):
            assert exit_code_for(error_code(code)) == code

    def test_cli_reexports_same_values(self):
        from repro import cli

        assert (cli.EXIT_OK, cli.EXIT_FAILURE, cli.EXIT_INFEASIBLE,
                cli.EXIT_TIMEOUT, cli.EXIT_PARSE_ERROR) == (0, 1, 2, 3, 4)


# ----------------------------------------------------------------------
# options
# ----------------------------------------------------------------------
class TestOptionsRoundTrip:
    def test_round_trip_non_defaults(self):
        options = SynthesisOptions(
            checker="batch",
            granularity="rule",
            remove_waits=False,
            use_counterexamples=False,
            timeout=12.5,
            portfolio=("incremental", "symbolic"),
            memoize=False,
            shards=3,
            use_plan_cache=False,
        )
        assert options_from_dict(options_to_dict(options)) == options

    def test_defaults_from_empty(self):
        assert options_from_dict({}) == SynthesisOptions()

    @pytest.mark.parametrize(
        "bad",
        [
            {"checker": "no-such-backend"},
            {"portfolio": ["incremental", "bogus"]},
            {"portfolio": "incremental"},
            {"granularity": "packet"},
            {"timeout": "fast"},
            {"timeout": True},
            {"shards": 0},
            {"shards": 1.5},
            {"memoize": "yes"},
            {"use_plan_cache": "no"},
            {"surprise": 1},
        ],
    )
    def test_rejects_bad_fields(self, bad):
        with pytest.raises(ParseError):
            options_from_dict(bad)


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
class TestSynthesisRequest:
    def test_round_trip(self):
        request = SynthesisRequest(
            problem=fig1_problem(),
            options=SynthesisOptions(timeout=5.0, shards=2),
            job_id="job-x",
        )
        data = request.to_dict()
        assert data["api"] == API_VERSION
        parsed = SynthesisRequest.from_dict(data)
        assert parsed.job_id == "job-x"
        assert parsed.options == request.options
        assert problem_to_dict(parsed.problem) == problem_to_dict(request.problem)

    def test_rejects_wrong_api_version(self):
        data = SynthesisRequest(problem=fig1_problem()).to_dict()
        data["api"] = "repro-api/2"
        with pytest.raises(ParseError, match="api version"):
            SynthesisRequest.from_dict(data)

    def test_accepts_missing_api_marker(self):
        data = SynthesisRequest(problem=fig1_problem()).to_dict()
        del data["api"]
        SynthesisRequest.from_dict(data)

    def test_no_options_round_trips_to_none(self):
        # options=None means "the server's defaults apply" — the document
        # must not materialize schema defaults on either side
        data = SynthesisRequest(problem=fig1_problem()).to_dict()
        assert "options" not in data
        assert SynthesisRequest.from_dict(data).options is None
        assert SynthesisRequest.from_dict({"problem": data["problem"],
                                           "options": {}}).options == (
            SynthesisOptions()
        )

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("problem"),
            lambda d: d.__setitem__("problem", 5),
            lambda d: d["problem"].__setitem__("spec", "F ("),
            lambda d: d.__setitem__("options", {"shards": -1}),
        ],
    )
    def test_rejects_malformed(self, mutate):
        data = SynthesisRequest(problem=fig1_problem()).to_dict()
        mutate(data)
        with pytest.raises(ParseError):
            SynthesisRequest.from_dict(data)


# ----------------------------------------------------------------------
# job views and responses
# ----------------------------------------------------------------------
class TestJobView:
    def test_round_trip_from_job(self):
        job = SynthesisJob(job_id="j1", problem=fig1_problem())
        view = JobView.from_job(job)
        parsed = JobView.from_dict(view.to_dict())
        assert parsed == view
        assert parsed.status == "queued"
        assert parsed.fingerprint == job.fingerprint

    def test_rejects_unknown_status(self):
        with pytest.raises(ParseError, match="status"):
            JobView.from_dict({"id": "x", "status": "exploded"})


class TestSynthesisResponse:
    def test_round_trip_with_plan(self):
        result = JobResult(
            job_id="j1",
            status=JobStatus.DONE,
            plan=make_plan(),
            seconds=0.25,
            backend="incremental",
            fingerprint="abc",
        )
        response = SynthesisResponse.from_result(result)
        data = response.to_dict()
        assert data["api"] == API_VERSION
        assert data["status"] == "done"
        parsed = SynthesisResponse.from_dict(data)
        assert plan_to_dict(parsed.plan) == plan_to_dict(result.plan)
        back = parsed.to_result()
        assert back.status is JobStatus.DONE
        assert back.backend == "incremental"
        assert back.fingerprint == "abc"
        assert back.seconds == pytest.approx(0.25)

    def test_matches_batch_jsonl_record_shape(self):
        # the `batch --server` stream must diff cleanly against in-process
        # runs: same keys, same values, plus only the api marker
        result = JobResult(
            job_id="j1", status=JobStatus.DONE, plan=make_plan(),
            fingerprint="abc",
        )
        local = result.to_dict()
        wire = SynthesisResponse.from_result(result).to_dict()
        assert wire.pop("api") == API_VERSION
        assert wire == local

    def test_failure_without_plan(self):
        result = JobResult(
            job_id="j2", status=JobStatus.INFEASIBLE, message="(sat) no"
        )
        parsed = SynthesisResponse.from_dict(
            SynthesisResponse.from_result(result).to_dict()
        )
        assert parsed.plan is None
        assert parsed.to_result().status is JobStatus.INFEASIBLE
        assert parsed.message == "(sat) no"


# ----------------------------------------------------------------------
# error envelope
# ----------------------------------------------------------------------
class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "err, code, exit_code",
        [
            (ParseError("bad spec"), "parse", EXIT_PARSE_ERROR),
            (UpdateInfeasibleError("no"), "infeasible", EXIT_INFEASIBLE),
            (SynthesisTimeout("slow"), "timeout", EXIT_TIMEOUT),
            (ReproError("boom"), "failure", EXIT_FAILURE),
        ],
    )
    def test_from_exception_families(self, err, code, exit_code):
        envelope = ErrorEnvelope.from_exception(err)
        assert envelope.code == code
        assert envelope.exit_code == exit_code
        parsed = ErrorEnvelope.from_dict(envelope.to_dict())
        assert parsed == envelope

    def test_raise_reconstructs_exception_family(self):
        with pytest.raises(ParseError, match="bad spec"):
            ErrorEnvelope.from_exception(ParseError("bad spec")).raise_()
        with pytest.raises(KeyError):
            ErrorEnvelope.not_found("job gone").raise_()
        with pytest.raises(ReproError, match="boom"):
            ErrorEnvelope.from_exception(ReproError("boom")).raise_()

    def test_rejects_missing_error_object(self):
        with pytest.raises(ParseError):
            ErrorEnvelope.from_dict({"api": API_VERSION})


# ----------------------------------------------------------------------
# fleet documents
# ----------------------------------------------------------------------
class TestFleetDocuments:
    def test_lease_request_round_trip(self):
        request = LeaseRequest(worker_id="w-1", max_groups=3, wait=2.5)
        data = request.to_dict()
        assert data["api"] == API_VERSION
        assert LeaseRequest.from_dict(data) == request

    @pytest.mark.parametrize(
        "bad",
        [
            {},  # no worker
            {"worker": 7},
            {"worker": "w", "max_groups": 0},
            {"worker": "w", "max_groups": 1.5},
            {"worker": "w", "wait": -1},
            {"worker": "w", "wait": float("nan")},
            {"worker": "w", "wait": True},
        ],
    )
    def test_lease_request_rejects_bad_fields(self, bad):
        with pytest.raises(ParseError):
            LeaseRequest.from_dict(dict(bad, api=API_VERSION))

    def test_lease_grant_round_trip(self):
        from repro.perf.memo import SharedVerdictMemo

        grant = LeaseGrant(
            lease_id="lease-9",
            fingerprint="fp-abc",
            problem=fig1_problem(),
            options=SynthesisOptions(timeout=4.0, shards=2),
            scope="scope-xyz",
            memo=memo_snapshot_to_wire(SharedVerdictMemo().snapshot()),
            deadline_seconds=12.0,
            attempt=2,
        )
        data = grant.to_dict()
        assert data["api"] == API_VERSION
        parsed = LeaseGrant.from_dict(data)
        assert parsed.lease_id == "lease-9"
        assert parsed.fingerprint == "fp-abc"
        assert parsed.options == grant.options
        assert parsed.scope == "scope-xyz"
        assert parsed.deadline_seconds == 12.0
        assert parsed.attempt == 2
        assert problem_to_dict(parsed.problem) == problem_to_dict(grant.problem)

    def test_lease_completion_round_trip_and_validation(self):
        completion = LeaseCompletion(
            lease_id="lease-1",
            worker_id="w-1",
            payload={"status": "infeasible", "seconds": 0.25, "message": "m"},
        )
        parsed = LeaseCompletion.from_dict(completion.to_dict())
        assert parsed == completion
        for payload in (
            {"status": "sideways", "seconds": 0.0},  # unknown status
            {"status": "done", "seconds": 0.0},  # done without a plan
            {"status": "done", "plan": "not-a-dict", "seconds": 0.0},
            {"status": "error", "seconds": "slow"},
            {"seconds": 0.0},  # no status
        ):
            bad = LeaseCompletion(
                lease_id="lease-1", worker_id="w-1", payload=payload
            )
            with pytest.raises(ParseError):
                LeaseCompletion.from_dict(bad.to_dict())

    def test_heartbeat_round_trip(self):
        request = HeartbeatRequest(worker_id="w-1", lease_ids=("a", "b"))
        assert HeartbeatRequest.from_dict(request.to_dict()) == request

    @pytest.mark.parametrize(
        "garbage",
        [
            42,  # not a string
            "not base64!!",
            "AAAA",  # valid b64, not a pickle
        ],
    )
    def test_memo_wire_rejects_garbage(self, garbage):
        with pytest.raises(ParseError):
            memo_snapshot_from_wire(garbage)

    def test_memo_wire_rejects_non_snapshot_pickle(self):
        import base64
        import pickle

        wire = base64.b64encode(pickle.dumps({"not": "a snapshot"})).decode()
        with pytest.raises(ParseError, match="snapshot"):
            memo_snapshot_from_wire(wire)

    def test_memo_wire_round_trip(self):
        from repro.perf.memo import MemoSnapshot, SharedVerdictMemo

        snapshot = SharedVerdictMemo().snapshot()
        decoded = memo_snapshot_from_wire(memo_snapshot_to_wire(snapshot))
        assert isinstance(decoded, MemoSnapshot)
