"""Tests for JSON serialization and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.errors import ParseError
from repro.net.commands import SwitchUpdate, Wait
from repro.net.config import Configuration
from repro.net.fields import TrafficClass
from repro.net.rules import Forward, Pattern, Rule, SetField, Table
from repro.net.serialize import (
    Problem,
    config_from_dict,
    config_to_dict,
    load_problem,
    plan_to_dict,
    problem_from_dict,
    rule_from_dict,
    rule_to_dict,
    save_problem,
    topology_from_dict,
    topology_to_dict,
)
from repro.synthesis.plan import UpdatePlan
from repro.topo import mini_datacenter

TC = TrafficClass.make("f13", src="H1", dst="H3")
RED = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]


class TestRoundTrips:
    def test_topology_roundtrip(self):
        topo = mini_datacenter()
        clone = topology_from_dict(topology_to_dict(topo))
        assert clone.switches == topo.switches
        assert clone.hosts == topo.hosts
        # ports preserved exactly
        for link in topo.links:
            assert clone.peer(link.node_a, link.port_a) == (link.node_b, link.port_b)

    def test_rule_roundtrip(self):
        rule = Rule(
            7,
            Pattern.make(in_port=2, dst="H3"),
            (SetField("ver", "2"), Forward(4)),
        )
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_config_roundtrip(self):
        topo = mini_datacenter()
        config = Configuration.from_paths(topo, {TC: RED})
        assert config_from_dict(config_to_dict(config)) == config

    def test_problem_roundtrip(self, tmp_path):
        topo = mini_datacenter()
        problem = Problem(
            topology=topo,
            ingresses={TC: ["H1"]},
            init=Configuration.from_paths(topo, {TC: RED}),
            final=Configuration.from_paths(
                topo, {TC: ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]}
            ),
            spec=__import__("repro.ltl.parser", fromlist=["parse"]).parse(
                "dst=H3 => F at(H3)"
            ),
            spec_text="dst=H3 => F at(H3)",
        )
        path = tmp_path / "problem.json"
        save_problem(problem, str(path))
        loaded = load_problem(str(path))
        assert loaded.init == problem.init
        assert loaded.final == problem.final
        assert loaded.spec == problem.spec
        assert loaded.classes == problem.classes
        assert loaded.ingresses[TC] == ["H1"]

    def test_plan_serialization(self):
        table = Table([Rule(1, Pattern.make(dst="H3"), (Forward(1),))])
        plan = UpdatePlan([SwitchUpdate("A", table), Wait(), SwitchUpdate("B", table)])
        data = plan_to_dict(plan)
        assert data["commands"][1] == {"op": "wait"}
        assert data["commands"][0]["switch"] == "A"

    def test_bad_action_rejected(self):
        with pytest.raises(ParseError):
            rule_from_dict({"priority": 1, "match": {}, "actions": [{"zap": 1}]})

    def test_bad_link_rejected(self):
        with pytest.raises(ParseError):
            topology_from_dict({"switches": ["A"], "links": [["A"]]})


class TestCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_demo_emits_valid_problem(self, capsys, tmp_path):
        code, out = self.run_cli(capsys, "demo", "fig1-green")
        assert code == 0
        problem = problem_from_dict(json.loads(out))
        assert problem.topology.is_switch("C2")

    def test_synthesize_from_file(self, capsys, tmp_path):
        code, out = self.run_cli(capsys, "demo", "fig1-green")
        path = tmp_path / "p.json"
        path.write_text(out)
        code, out = self.run_cli(capsys, "synthesize", str(path))
        assert code == 0
        assert "update(C2)" in out

    def test_synthesize_json_output(self, capsys, tmp_path):
        _, out = self.run_cli(capsys, "demo", "fig1-blue")
        path = tmp_path / "p.json"
        path.write_text(out)
        code, out = self.run_cli(capsys, "synthesize", str(path), "--json")
        assert code == 0
        plan = json.loads(out)
        assert plan["granularity"] == "switch"
        assert any(c["op"] == "wait" for c in plan["commands"])

    def test_synthesize_infeasible_exit_code(self, capsys, tmp_path):
        _, out = self.run_cli(capsys, "demo", "double-diamond")
        path = tmp_path / "p.json"
        path.write_text(out)
        code, out = self.run_cli(capsys, "synthesize", str(path))
        assert code == 2
        assert "INFEASIBLE" in out
        # rule granularity solves it
        code, out = self.run_cli(
            capsys, "synthesize", str(path), "--granularity", "rule"
        )
        assert code == 0

    def test_check_initial_and_final(self, capsys, tmp_path):
        _, out = self.run_cli(capsys, "demo", "fig1-green")
        path = tmp_path / "p.json"
        path.write_text(out)
        code, out = self.run_cli(capsys, "check", str(path))
        assert code == 0 and "OK" in out
        code, out = self.run_cli(capsys, "check", str(path), "--final")
        assert code == 0

    def test_check_violation_reports_counterexample(self, capsys, tmp_path):
        _, out = self.run_cli(capsys, "demo", "fig1-green")
        data = json.loads(out)
        data["init"] = {}  # empty initial config: blackhole
        path = tmp_path / "p.json"
        path.write_text(json.dumps(data))
        code, out = self.run_cli(capsys, "check", str(path))
        assert code == 1
        assert "VIOLATION" in out
        assert "DROP" in out

    def test_check_json_verdict(self, capsys, tmp_path):
        _, out = self.run_cli(capsys, "demo", "fig1-green")
        path = tmp_path / "p.json"
        path.write_text(out)
        code, out = self.run_cli(capsys, "check", str(path), "--json")
        assert code == 0
        document = json.loads(out)
        assert document["ok"] is True
        assert document["configuration"] == "initial"
        assert document["checker"] == "incremental"
        assert document["counterexample"] is None
        assert document["timings"]["total_seconds"] >= 0.0

    def test_check_json_violation_carries_trace(self, capsys, tmp_path):
        _, out = self.run_cli(capsys, "demo", "fig1-green")
        data = json.loads(out)
        data["init"] = {}  # empty initial config: blackhole
        path = tmp_path / "p.json"
        path.write_text(json.dumps(data))
        code, out = self.run_cli(capsys, "check", str(path), "--json")
        assert code == 1
        document = json.loads(out)
        assert document["ok"] is False
        assert document["counterexample"], "expected a violating trace"
        assert any("DROP" in state for state in document["counterexample"])

    def test_unknown_demo(self, capsys):
        code = main(["demo", "nope"])
        assert code == 1
