#!/usr/bin/env python3
"""Datacenter maintenance with middlebox waypointing (§2, red -> blue).

Scenario: traffic from H1 to H3 currently follows the red path
T1-A1-C1-A3-T3.  Operations wants to move it to the blue path
T1-A2-C1-A4-T3, but security requires every packet to traverse one of the
scrubbing middleboxes A2 or A3 *throughout* the transition, in addition to
preserving connectivity.

A purely consistent (two-phase) update is overkill; a naive order is wrong
(packets forwarded by T1 before its update could reach C1 after *its*
update, bypassing both scrubbers).  The synthesizer finds the order the
paper derives by hand — update A2, A4, T1, then **wait**, then C1 — and the
wait-removal heuristic keeps exactly the one wait that matters.

We then *execute* the plan on the operational network machine with traffic
flowing, and dynamically verify no completed packet trace ever violated the
invariant.

Run:  python examples/datacenter_maintenance.py
"""

from repro import Configuration, TrafficClass, UpdateSynthesizer, specs
from repro.net.fields import packet_for_class
from repro.net.machine import NetworkMachine
from repro.net.trace import trace_satisfies
from repro.topo import mini_datacenter


def main() -> None:
    topo = mini_datacenter()
    tc = TrafficClass.make("h1_to_h3", src="H1", dst="H3")

    red = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
    blue = ["H1", "T1", "A2", "C1", "A4", "T3", "H3"]
    init = Configuration.from_paths(topo, {tc: red})
    final = Configuration.from_paths(topo, {tc: blue})

    # connectivity + "every packet visits scrubber A2 or A3"
    spec = specs.waypoint_choice(tc, ["A2", "A3"], "H3")
    print(f"Specification: {spec}\n")

    plan = UpdateSynthesizer(topo).synthesize(init, final, spec, {tc: ["H1"]})
    print(f"Synthesized plan: {plan}")
    print(
        f"Waits: {plan.stats.waits_before_removal} careful -> "
        f"{plan.stats.waits_after_removal} kept after removal\n"
    )

    # --- execute the plan on the operational machine with live traffic ----
    machine = NetworkMachine(topo, init, seed=42)
    machine.set_commands(list(plan.commands))

    def inject_burst() -> None:
        for _ in range(3):
            machine.inject("H1", packet_for_class(tc), tc)

    machine.run_commands_carefully(inject_burst)

    traces = machine.completed_traces()
    violations = [
        pid for pid, trace in traces.items() if not trace_satisfies(spec, trace)
    ]
    delivered = sum(1 for o in machine.outcome.values() if o == "delivered")
    print(f"Executed plan with {len(traces)} packets crossing the update:")
    print(f"  delivered: {delivered}, violations: {len(violations)}")
    assert not violations, "a packet bypassed the scrubbers!"
    print("OK: every packet traversed A2 or A3 and reached H3.")


if __name__ == "__main__":
    main()
