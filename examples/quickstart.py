#!/usr/bin/env python3
"""Quickstart: synthesize the paper's red -> green update (Figure 1 / §2).

The mini-datacenter routes traffic from H1 to H3 along the red path
T1-A1-C1-A3-T3.  We want to move it to the green path T1-A1-C2-A3-T3 (say,
to take C1 down for maintenance) without ever breaking H1 -> H3 connectivity.

Updating A1 before C2 would blackhole packets at C2; the synthesizer finds
the safe order (C2 first), and the wait-removal pass shows which
synchronization barriers are actually required.

Run:  python examples/quickstart.py
"""

from repro import Configuration, TrafficClass, UpdateSynthesizer, specs
from repro.topo import mini_datacenter


def main() -> None:
    topo = mini_datacenter()
    print(f"Topology: {topo}")

    # one traffic class: packets from H1 to H3
    tc = TrafficClass.make("h1_to_h3", src="H1", dst="H3")

    red = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
    green = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
    init = Configuration.from_paths(topo, {tc: red})
    final = Configuration.from_paths(topo, {tc: green})

    # invariant: H1 -> H3 connectivity must hold during the whole update
    spec = specs.reachability(tc, "H3")
    print(f"Specification: {spec}")

    synth = UpdateSynthesizer(topo)
    plan = synth.synthesize(init, final, spec, {tc: ["H1"]})

    print(f"\nSynthesized plan: {plan}")
    print(plan.summary())
    print(
        f"Model-checker calls: {plan.stats.model_checks}, "
        f"counterexamples learned: {plan.stats.counterexamples}"
    )
    print(
        f"Waits: {plan.stats.waits_before_removal} before removal, "
        f"{plan.stats.waits_after_removal} kept"
    )

    # sanity: C2 must be ready before A1 points at it
    order = [c.switch for c in plan.updates()]
    assert order.index("C2") < order.index("A1"), "unsafe order?!"
    print("\nOK: C2 is updated before A1, as the paper requires.")


if __name__ == "__main__":
    main()
