#!/usr/bin/env python3
"""Authoring configurations as Frenetic/NetKAT-style policies.

The paper's tool is built on top of the Frenetic SDN platform: operators
write high-level policies, the compiler produces OpenFlow tables, and the
synthesizer transitions between them safely.  This example writes the
Figure 1 configurations as policies (with an access-control twist: traffic
of type "ssh" is dropped at the top-of-rack switch), compiles them, and
synthesizes the update — plus a failure-robustness report for the plan.

Run:  python examples/frenetic_policies.py
"""

from repro import TrafficClass, UpdateSynthesizer, specs
from repro.frenetic import compile_network, filter_, fwd, test
from repro.synthesis import robustness_report
from repro.topo import mini_datacenter


def routing_policies(topo, path, with_acl=False):
    """Per-switch policies forwarding dst=H3 along ``path``."""
    policies = {}
    for here, nxt in zip(path[1:-1], path[2:]):
        policy = filter_(test("dst", "H3")) >> fwd(topo.port_to(here, nxt))
        if with_acl and here == path[1]:
            # drop ssh at the ingress ToR: filter(dst=H3 & !typ=ssh)
            policy = filter_(test("dst", "H3") & ~test("typ", "ssh")) >> fwd(
                topo.port_to(here, nxt)
            )
        policies[here] = policy
    return policies


def main() -> None:
    topo = mini_datacenter()
    tc = TrafficClass.make("web", src="H1", dst="H3", typ="web")

    red = ["H1", "T1", "A1", "C1", "A3", "T3", "H3"]
    green = ["H1", "T1", "A1", "C2", "A3", "T3", "H3"]
    init = compile_network(routing_policies(topo, red, with_acl=True))
    final = compile_network(routing_policies(topo, green, with_acl=True))

    print("Compiled ingress table (T1), with the ssh ACL:")
    for rule in init.table("T1"):
        print(f"  {rule}")

    spec = specs.reachability(tc, "H3")
    plan = UpdateSynthesizer(topo).synthesize(init, final, spec, {tc: ["H1"]})
    print(f"\nSynthesized plan: {plan}")

    # the ACL really blocks ssh in both configurations
    ssh = TrafficClass.make("ssh", src="H1", dst="H3", typ="ssh")
    from repro.kripke.structure import KripkeStructure
    from repro.mc import make_checker

    for name, config in (("initial", init), ("final", final)):
        ks = KripkeStructure(topo, config, {ssh: ["H1"]})
        ok = make_checker("incremental", ks, specs.reachability(ssh, "H3")).full_check().ok
        print(f"ssh reaches H3 in {name} config: {ok} (expected False)")

    # how fragile is the plan to single-link failures?
    report = robustness_report(topo, init, plan, {tc: ["H1"]}, spec)
    print(
        f"\nFailure robustness: {report.survival_rate():.0%} of "
        f"(stage, failed-link) probes keep the spec"
    )
    print(f"fragile links: {report.fragile_links()}")


if __name__ == "__main__":
    main()
