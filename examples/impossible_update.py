#!/usr/bin/env python3
"""Switch-granularity impossibility and the rule-granularity escape hatch
(Figures 8(h) and 8(i)).

Two flows cross a ring in opposite directions: flow A moves from the east
arc to the west arc while flow B moves from the west arc to the east arc.
At switch granularity every switch's table carries both flows, so the
ordering constraints form a cycle — no simple update order is safe, and the
SAT-based early-termination optimization proves it quickly.

At rule granularity each flow's rules update independently and a correct
(longer) sequence exists.

Run:  python examples/impossible_update.py
"""

import time

from repro import UpdateSynthesizer
from repro.errors import UpdateInfeasibleError
from repro.topo import double_diamond


def main() -> None:
    scenario = double_diamond(16, seed=1)
    print(f"Scenario: {scenario.name}")
    print(
        f"  {len(scenario.topology.switches)} switches, "
        f"{scenario.units_updating()} switches change tables, "
        f"{len(scenario.classes)} flows in opposite directions\n"
    )

    # --- switch granularity: provably impossible --------------------------
    synth = UpdateSynthesizer(scenario.topology)
    start = time.perf_counter()
    try:
        synth.synthesize(scenario.init, scenario.final, scenario.spec, scenario.ingresses)
        raise AssertionError("unexpected success")
    except UpdateInfeasibleError as err:
        elapsed = time.perf_counter() - start
        print(f"Switch granularity: infeasible (reason={err.reason}) in {elapsed:.3f}s")
        if err.reason == "sat":
            print("  ... proven by the incremental SAT ordering constraints (§4.2.B)")

    # --- rule granularity: solvable ---------------------------------------
    synth_rules = UpdateSynthesizer(scenario.topology, granularity="rule")
    start = time.perf_counter()
    plan = synth_rules.synthesize(
        scenario.init, scenario.final, scenario.spec, scenario.ingresses
    )
    elapsed = time.perf_counter() - start
    print(f"\nRule granularity: solved in {elapsed:.3f}s")
    print(f"  {plan.summary()}")
    print(f"  first commands: {' ; '.join(str(c) for c in plan.commands[:6])} ...")


if __name__ == "__main__":
    main()
