#!/usr/bin/env python3
"""Service chaining across a WAN migration (§6 properties on a real topology).

A business migrates its traffic between egress paths on the Abilene
backbone while a compliance rule requires every packet from Seattle to
Atlanta to traverse the Denver IDS and then the Kansas City firewall, in
that order (a service chain), during the whole migration.

The example also demonstrates infeasibility reporting: a stricter chain that
the final configuration itself cannot satisfy is rejected immediately.

Run:  python examples/firewall_migration.py
"""

from repro import Configuration, TrafficClass, UpdateSynthesizer, specs
from repro.errors import UpdateInfeasibleError
from repro.topo import zoo_topology


def main() -> None:
    topo = zoo_topology("Abilene")
    topo.add_host("Hsea")
    topo.add_link("SEA", "Hsea")
    topo.add_host("Hatl")
    topo.add_link("ATL", "Hatl")

    tc = TrafficClass.make("sea_to_atl", src="Hsea", dst="Hatl")

    # both paths pass DEN then KSC (the IDS/firewall chain)
    path_via_hou = ["Hsea", "SEA", "DEN", "KSC", "HOU", "ATL", "Hatl"]
    path_via_ind = ["Hsea", "SEA", "DEN", "KSC", "IND", "ATL", "Hatl"]
    init = Configuration.from_paths(topo, {tc: path_via_hou})
    final = Configuration.from_paths(topo, {tc: path_via_ind})

    chain = specs.service_chain(tc, ["DEN", "KSC"], "Hatl")
    print(f"Specification: {chain}\n")

    synth = UpdateSynthesizer(topo)
    plan = synth.synthesize(init, final, chain, {tc: ["Hsea"]})
    print(f"Synthesized plan: {plan}")
    print(plan.summary())

    # --- an impossible requirement is detected, not silently violated -----
    impossible = specs.service_chain(tc, ["KSC", "DEN"], "Hatl")  # wrong order
    try:
        synth.synthesize(init, final, impossible, {tc: ["Hsea"]})
        raise AssertionError("should have been infeasible")
    except UpdateInfeasibleError as err:
        print(f"\nReversed chain correctly rejected: {err}")


if __name__ == "__main__":
    main()
