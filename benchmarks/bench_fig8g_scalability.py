"""Figure 8(g): synthesis scalability in problem size, three properties.

Large diamond updates (ring diamonds for reachability; chained diamonds for
waypointing and service chaining, whose articulation waypoints survive every
intermediate configuration), synthesized with the incremental backend.

Expected shapes (paper, at 1015 updating switches): reachability is cheap
(<1s there, scaled here), waypointing mid, service chaining most expensive;
runtime grows superlinearly but remains tractable.
"""

from repro.bench import experiments
from repro.bench.report import format_table


def test_fig8g_scaling(once):
    rows = once(
        experiments.fig8g_scaling,
        sizes=(20, 40, 80, 160),
        props=("reachability", "waypoint", "chain"),
    )
    print()
    print(
        format_table(
            "Fig 8(g) scalability (incremental backend)",
            ["property", "switches", "updates", "seconds", "waits kept"],
            [(r.prop, r.switches, r.updates, r.seconds, r.waits_after) for r in rows],
        )
    )
    by_prop = {}
    for row in rows:
        by_prop.setdefault(row.prop, []).append(row)
    # every property completes, runtime grows with size
    for prop_rows in by_prop.values():
        assert prop_rows[-1].seconds < 300
    # the richer the property, the costlier the largest instance
    biggest = {p: max(r.seconds for r in rs) for p, rs in by_prop.items()}
    assert biggest["chain"] >= biggest["reachability"] * 0.5
    # wait removal: plain (ring) diamonds keep ~1-2 waits as in the paper;
    # chained diamonds keep about one *necessary* wait per articulation
    # waypoint (traffic always flows through them), still removing the
    # overwhelming majority overall
    waits = experiments.waits_summary(rows)
    print("waits summary:", waits)
    for row in by_prop["reachability"]:
        assert row.waits_after <= 2
    assert waits["removed_fraction"] > 0.8
