"""Figure 7(a-c): Incremental vs Batch vs automaton ("NuSMV") backends.

One benchmark per topology family (Topology Zoo, fat-tree, small-world),
each synthesizing reachability-preserving diamond updates with all three
checker backends and reporting the per-scenario runtimes plus the
geometric-mean speedup of Incremental over the others.

Expected shapes (paper): Incremental wins on every input, by a widening
margin as instances grow; the monolithic automaton backend is the slowest
(the paper's NuSMV gap is orders of magnitude on testbed-scale inputs).
"""


from repro.bench import experiments
from repro.bench.report import format_table

BACKENDS = ("incremental", "batch", "automaton", "symbolic")


def _report(title, rows, means):
    print()
    print(
        format_table(
            title,
            ["scenario", "switches"] + list(BACKENDS),
            [
                (r.name, r.switches, *(r.seconds.get(b, float("nan")) for b in BACKENDS))
                for r in rows
            ],
        )
    )
    print("geomean speedups:", {k: round(v, 2) for k, v in means.items()})


def _assert_incremental_wins_at_scale(rows, means):
    # at the largest instances the incremental backend must win
    big = max(rows, key=lambda r: r.switches)
    assert big.seconds["incremental"] <= big.seconds["batch"]
    assert big.seconds["incremental"] <= big.seconds["automaton"]
    assert big.seconds["incremental"] <= big.seconds["symbolic"]
    assert means["incremental_vs_automaton"] >= 1.0
    # the symbolic ("NuSMV") backend loses by a large factor at scale
    assert means["incremental_vs_symbolic"] >= 5.0


def test_fig7a_topology_zoo(once):
    rows, means = once(experiments.fig7_solvers, "zoo")
    _report("Fig 7(a) Topology Zoo (reachability)", rows, means)
    assert len(rows) >= 4
    assert means["incremental_vs_automaton"] >= 0.5  # small WANs: modest gaps


def test_fig7b_fattree(once):
    rows, means = once(experiments.fig7_solvers, "fattree", sizes=(4, 6, 8))
    _report("Fig 7(b) FatTree (reachability)", rows, means)
    assert len(rows) == 3


def test_fig7c_smallworld(once):
    rows, means = once(
        experiments.fig7_solvers, "smallworld", sizes=(40, 80, 160, 240)
    )
    _report("Fig 7(c) Small-World (reachability)", rows, means)
    _assert_incremental_wins_at_scale(rows, means)
    # the gap should widen with size (crossover shape)
    small, big = rows[0], rows[-1]
    gap_small = small.seconds["symbolic"] / small.seconds["incremental"]
    gap_big = big.seconds["symbolic"] / big.seconds["incremental"]
    assert gap_big > gap_small
