"""Figure 8(i): rule granularity solves the switch-impossible instances.

The same double diamonds as Figure 8(h), synthesized at rule granularity:
per-flow updates decouple the two diamonds and an order exists.

Expected shape (paper): all instances solve; runtime is higher than
switch-granular feasible cases (about twice the units) but scales; the
wait-removal pass leaves only a few waits (paper: ~2.6 average, max 4).
"""

from repro.bench import experiments
from repro.bench.report import format_table


def test_fig8i_rule_granularity(once):
    rows = once(experiments.fig8i_rule_granularity, sizes=(8, 16, 32, 64))
    print()
    print(
        format_table(
            "Fig 8(i) rule-granularity synthesis",
            ["switches", "updates", "seconds", "waits kept"],
            [(r.switches, r.updates, r.seconds, r.waits_after) for r in rows],
        )
    )
    waits = experiments.waits_summary(rows)
    print("waits summary:", waits)
    assert all(r.updates > 0 for r in rows)
    assert waits["max_kept"] <= 4
    assert waits["removed_fraction"] > 0.85
