"""Batch service throughput: cold vs. warm-cache vs. parallel runs.

Builds a batch of ring-diamond problems of increasing size and pushes it
through :class:`repro.service.SynthesisService` three ways:

* **cold-serial** — empty cache, in-process execution (the baseline: what a
  loop over ``UpdateSynthesizer.synthesize`` would cost);
* **warm-serial** — the same batch resubmitted to the same service: every
  feasible job should be answered from the content-addressed plan cache;
* **cold-pool** — empty cache, multiprocessing worker pool.

Expected shape: the warm run reports a >=90% cache-hit rate and a much
lower wall time than the cold run; the pool run beats cold-serial once the
per-problem synthesis time dwarfs process-pool overhead (larger batches).

Pass ``--quick`` to shrink the workload for CI.
"""

import time

from repro.bench.report import format_table
from repro.net.serialize import Problem
from repro.service import SynthesisService, default_worker_count
from repro.topo import chained_diamond, ring_diamond


def _as_problem(scenario):
    return Problem(
        topology=scenario.topology,
        ingresses={tc: list(h) for tc, h in scenario.ingresses.items()},
        init=scenario.init,
        final=scenario.final,
        spec=scenario.spec,
        spec_text=str(scenario.spec),
    )


def _problems(quick):
    if quick:
        return [_as_problem(ring_diamond(n, seed=n)) for n in range(6, 12)]
    # chained diamonds are the heavy workload: hundreds of milliseconds of
    # synthesis each, enough to amortize worker-pool startup
    scenarios = [chained_diamond(2, length) for length in range(6, 14)]
    scenarios += [chained_diamond(3, length) for length in range(6, 14)]
    scenarios += [ring_diamond(n, seed=n) for n in (24, 32, 40, 48)]
    return [_as_problem(s) for s in scenarios]


def _run(service, problems):
    start = time.perf_counter()
    results = service.run_problems(problems)
    seconds = time.perf_counter() - start
    hits = sum(1 for r in results if r.cached)
    return seconds, hits / len(results), results


def test_service_throughput(quick):
    problems = _problems(quick)

    serial = SynthesisService(workers=0)
    cold_s, cold_rate, cold_results = _run(serial, problems)
    warm_s, warm_rate, _ = _run(serial, problems)
    workers = max(2, default_worker_count())
    pool = SynthesisService(workers=workers)
    pool_s, pool_rate, _ = _run(pool, problems)

    jobs = len(problems)
    print()
    print(
        format_table(
            "Batch service throughput",
            ["mode", "jobs", "seconds", "jobs/s", "cache hit rate"],
            [
                ("cold-serial", jobs, cold_s, jobs / cold_s, cold_rate),
                ("warm-serial", jobs, warm_s, jobs / warm_s, warm_rate),
                (f"cold-pool({workers})", jobs, pool_s, jobs / pool_s, pool_rate),
            ],
        )
    )
    print("service metrics:", serial.metrics_dict())

    assert all(r.ok for r in cold_results)
    assert warm_rate >= 0.9, f"warm cache hit rate {warm_rate:.0%} below 90%"
    assert warm_s < cold_s, "warm-cache run should be faster than the cold run"
