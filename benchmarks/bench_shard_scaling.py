"""Intra-job search sharding: ``--shards 4`` vs ``--shards 1`` wall clock.

The workload is :func:`repro.topo.fan_diamond` — ``n`` diamond flips that
all wait on one shared enabler switch ``Zall``, with names adversarial to
the search's alphabetical tie-break.  With the reachability heuristic
disabled (the hard-search ablation, as in ``bench_ablations.py``), an
unsharded search pays one refuted model check per flip before it reaches
``Zall``; a first-unit shard race bounds that root-level waste at one
slice — only the shard owning ``Zall`` can finish, it never pays the other
slices' refutations, and winning cancels the losers.

Two claims are checked:

* **work** (machine-independent): the winning shard's plan reports fewer
  model checks than the unsharded run's plan;
* **wall clock**: ``shards=4`` completes no slower than ``shards=1``.
  This holds even on a single core — the losing shards exhaust their
  slices after a handful of checks and the winner simply never pays the
  skipped refutations — and with real cores the race parallelizes on top.

Pass ``--quick`` to shrink the fan for CI.
"""

import os
import time

from repro.bench.report import format_table
from repro.net.serialize import Problem
from repro.service import SynthesisOptions, SynthesisService
from repro.topo import fan_diamond

#: wall-clock tolerance: "no slower" with headroom for pool scheduling noise
WALL_FACTOR = 1.25


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - platforms without affinity
        return os.cpu_count() or 1


def _as_problem(scenario):
    return Problem(
        topology=scenario.topology,
        ingresses={tc: list(h) for tc, h in scenario.ingresses.items()},
        init=scenario.init,
        final=scenario.final,
        spec=scenario.spec,
        spec_text=str(scenario.spec),
    )


def _run(problem, shards, workers):
    service = SynthesisService(workers=workers)
    service.submit(
        problem,
        options=SynthesisOptions(
            use_reachability_heuristic=False,
            shards=shards,
            timeout=300.0,
        ),
    )
    start = time.perf_counter()
    result = service.run()[0]
    wall = time.perf_counter() - start
    assert result.ok, f"shards={shards}: {result.status} {result.message}"
    return wall, result.plan.stats.model_checks


def test_shard_scaling(quick):
    # sized so the skipped root-level model checks dominate pool startup:
    # below ~32 diamonds the comparison measures process-spawn noise
    n = 40 if quick else 56
    problem = _as_problem(fan_diamond(n))
    workers = min(4, max(2, _cores()))
    rows = []
    walls = {}
    checks = {}
    for shards in (1, 4):
        wall, model_checks = _run(problem, shards, workers)
        walls[shards], checks[shards] = wall, model_checks
        rows.append((shards, workers, round(wall, 3), model_checks))
    print()
    print(
        format_table(
            f"shard scaling — fan_diamond({n}), heuristic off",
            ["shards", "workers", "wall s", "model checks"],
            rows,
        )
    )
    # the winning shard skips the other slices' root-level refutations the
    # unsharded search pays before reaching the shared enabler
    assert checks[4] < checks[1]
    if walls[4] > walls[1] * WALL_FACTOR:
        # shared CI runners are noisy; trust a clean second measurement
        # before declaring the race slower than the serial search
        walls = {shards: _run(problem, shards, workers)[0] for shards in (1, 4)}
        print(f"re-measured: shards=1 {walls[1]:.3f}s, shards=4 {walls[4]:.3f}s")
    assert walls[4] <= walls[1] * WALL_FACTOR, (
        f"shards=4 took {walls[4]:.3f}s vs shards=1 {walls[1]:.3f}s"
    )
