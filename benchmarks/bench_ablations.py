"""Ablations for the §4.2 optimizations (DESIGN.md design-choice benches).

Not a paper figure: quantifies what each search optimization contributes in
this implementation.

Measured shapes:

* the reachability DFS heuristic (try unreachable switches first) is the
  dominant win on diamond workloads — without it the search leans on
  counterexample pruning, and without *both* the model-checker call count
  explodes (~5-7x here);
* counterexample pruning (the ``W`` set) is what keeps the heuristic-less
  search polynomial, and is also what makes infeasible instances die fast;
* SAT-based early termination is a safety net: on the double diamonds the
  learned ``W`` patterns already collapse the search, so the SAT proof
  arrives *after* exhaustion would (an honest negative result — the paper's
  instances were large enough for the exhaustive path to wander).
"""

from repro.bench import experiments
from repro.bench.report import format_table


def test_ablation_search_optimizations(once):
    rows = once(experiments.ablation_optimizations, n=40)
    print()
    print(
        format_table(
            "Ablation: search optimizations (ring diamond, 40 switches)",
            ["variant", "seconds", "model checks", "cex learned", "backtracks", "done"],
            [
                (r.variant, r.seconds, r.model_checks, r.counterexamples, r.backtracks, r.completed)
                for r in rows
            ],
        )
    )
    by_name = {r.variant: r for r in rows}
    assert all(r.completed for r in rows)
    # dropping both the heuristic and counterexample pruning costs the most
    assert (
        by_name["no-cex-no-heuristic"].model_checks
        >= 2 * by_name["full"].model_checks
    )
    # with the heuristic off, counterexample pruning limits the damage
    assert (
        by_name["no-reachability-heuristic"].model_checks
        < by_name["no-cex-no-heuristic"].model_checks
    )


def test_ablation_early_termination(once):
    rows = once(experiments.ablation_early_termination, sizes=(8, 16, 32))
    print()
    print(
        format_table(
            "Ablation: infeasibility detection (double diamonds)",
            ["variant", "seconds", "proved infeasible"],
            [(r.variant, r.seconds, r.completed) for r in rows],
        )
    )
    # both paths must prove infeasibility within the budget
    assert all(r.completed for r in rows)
