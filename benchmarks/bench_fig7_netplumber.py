"""Figure 7(d-f): Incremental vs NetPlumber-style backend (rule granularity).

Reproduces the paper's same-query-stream methodology: the incremental
search runs as usual, and every model-checking question it poses is also
answered (and timed) by the header-space backend.  Reported numbers are
pure checker seconds for the identical stream.

Shape caveat (documented in EXPERIMENTS.md): the paper measures a 2.74x
mean gap against the real NetPlumber, whose rule-level plumbing graph pays
substantial set-algebra costs per update.  Our simplified plumbing graph
(exact-match rules, per-source path re-propagation) is much lighter, so at
laptop scale the two checkers are near parity; the assertion below checks
parity-or-better at the largest instances rather than the paper's factor.
"""

from repro.bench import experiments
from repro.bench.report import format_table


def _run(once, prop, sizes):
    rows, means = once(experiments.fig7_netplumber, sizes=sizes, prop=prop)
    print()
    print(
        format_table(
            f"Fig 7(d-f) same-query-stream checker time ({prop})",
            ["scenario", "switches", "incremental", "netplumber"],
            [
                (r.name, r.switches, r.seconds["incremental"], r.seconds["netplumber"])
                for r in rows
            ],
        )
    )
    print("geomean (netplumber/incremental):", {k: round(v, 2) for k, v in means.items()})
    return rows, means


def test_fig7def_netplumber_reachability(once):
    rows, means = _run(once, "reachability", (16, 32, 64, 96))
    big = max(rows, key=lambda r: r.switches)
    # parity or better: incremental never more than 2x the HSA stand-in
    assert big.seconds["incremental"] <= 2.0 * big.seconds["netplumber"]
    assert means["incremental_vs_netplumber"] >= 0.5


def test_fig7def_netplumber_waypoint(once):
    rows, means = _run(once, "waypoint", (28, 64, 96))
    big = max(rows, key=lambda r: r.switches)
    assert big.seconds["incremental"] <= 2.0 * big.seconds["netplumber"]
