"""The scenario-corpus smoke suite as a pytest-benchmark target.

Runs the same ``repro bench --suite smoke`` sweep the CI perf gate uses
(quick sizes under ``--quick``) and asserts the corpus coverage contract:
at least 20 scenarios spanning at least 3 topology families and 3 spec
templates, with every verdict matching the scenario's expectation.
"""

from repro.bench.runner import run_suite


def test_bench_smoke_suite(once, quick):
    document = run_suite("smoke", quick=quick, workers=0)
    totals = document["totals"]
    corpus = document["corpus"]
    print()
    print(
        f"smoke suite: {totals['scenarios']} scenarios, "
        f"busy {totals['busy_seconds']:.3f}s, "
        f"model checks {totals['model_checks']}"
    )
    assert document["schema"].startswith("repro-bench/")
    assert totals["scenarios"] >= 20
    assert len(corpus["families"]) >= 3
    assert len(corpus["templates"]) >= 3
    assert totals["expected_mismatches"] == []
    assert totals["statuses"].get("error", 0) == 0
    once(run_suite, "smoke", quick=quick, workers=0)
