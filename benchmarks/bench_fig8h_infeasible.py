"""Figure 8(h): reporting switch-granularity impossibility.

Double-diamond instances (two flows routed in opposite directions over the
same arcs) admit no simple switch-granularity update order.  The benchmark
measures how quickly the synthesizer proves this.

Expected shape (paper): infeasibility is reported in time comparable to (or
faster than) solving a feasible instance of the same size, thanks to the
SAT-based early-termination optimization.
"""

from repro.bench import experiments
from repro.bench.report import format_table


def test_fig8h_infeasible(once):
    rows = once(experiments.fig8h_infeasible, sizes=(8, 16, 32, 64))
    print()
    print(
        format_table(
            "Fig 8(h) infeasible instances (switch granularity)",
            ["switches", "updating", "seconds", "feasible"],
            [(r.switches, r.updates, r.seconds, r.feasible) for r in rows],
        )
    )
    assert all(not r.feasible for r in rows)
    assert all(r.seconds < 120 for r in rows)
