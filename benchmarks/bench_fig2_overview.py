"""Figure 2: probe delivery and rule overhead during an update.

Regenerates both panels of the overview experiment on the Figure 1
mini-datacenter: (a) fraction of probes delivered over time for the naive,
two-phase, and synthesized ordering updates; (b) per-switch rule overhead
for two-phase vs ordering.

Expected shapes (paper): the naive update has a window of 100% loss; the
ordering and two-phase updates lose nothing; two-phase doubles rules on
several switches while ordering stays at 1x.
"""

from repro.bench import experiments
from repro.bench.report import format_series, format_table


def test_fig2a_probe_delivery(once):
    series = once(experiments.fig2a_probe_series)
    print()
    for strategy, points in series.items():
        print(format_series(f"Fig 2(a) probes received — {strategy}", points))
    # shape assertions
    naive_min = min(frac for _, frac in series["naive"])
    assert naive_min < 1.0, "naive update should lose probes"
    assert all(frac == 1.0 for _, frac in series["ordering"][:-1])
    assert all(frac == 1.0 for _, frac in series["two-phase"][:-1])


def test_fig2b_rule_overhead(once):
    overhead = once(experiments.fig2b_rule_overhead)
    print()
    switches = sorted(set(overhead["two-phase"]) | set(overhead["ordering"]))
    rows = [
        (sw, overhead["two-phase"].get(sw, 0.0), overhead["ordering"].get(sw, 0.0))
        for sw in switches
    ]
    print(format_table("Fig 2(b) rule overhead", ["switch", "two-phase", "ordering"], rows))
    assert max(overhead["two-phase"].values()) >= 2.0
    assert max(overhead["ordering"].values()) <= 1.0
