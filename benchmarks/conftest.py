"""Shared benchmark configuration.

Each benchmark file regenerates one of the paper's tables/figures and prints
the corresponding rows/series (captured with ``pytest -s`` or in the
benchmark summary).  Benchmarks run each driver once per round: the drivers
are macro-benchmarks (whole synthesis runs), so statistical repetition comes
from the scenario sweep inside each driver rather than from re-running it.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark workloads so the suite finishes in seconds (CI)",
    )


@pytest.fixture
def quick(request):
    """True when ``--quick`` was passed: benchmarks should scale down."""
    return request.config.getoption("--quick")


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once per measurement."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return run
